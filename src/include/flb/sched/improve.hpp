#pragma once

#include <cstddef>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"

/// \file improve.hpp
/// Post-pass local search on schedules: keep each task's processor
/// assignment as the search state, re-derive timing by bottom-level list
/// scheduling under that fixed assignment (algos/mapping.hpp), and
/// hill-climb by moving single tasks between processors. Used by the
/// bench_improvement ablation to measure how much makespan each
/// algorithm's schedule leaves on the table — a proxy for distance from
/// local optimality that puts the one-step heuristics' quality in
/// perspective.

namespace flb {

/// Options for improve_schedule.
struct ImproveOptions {
  /// Full sweeps over the task set before giving up (each sweep tries to
  /// move every task to every other processor).
  std::size_t max_passes = 4;
  /// Hard cap on schedule re-evaluations (each is one O(V log W + E) list
  /// scheduling run); bounds worst-case cost on large instances.
  std::size_t max_evaluations = 20000;
};

/// Result of a local-search run.
struct ImproveResult {
  Schedule schedule;       ///< the improved (or original-equivalent) schedule
  Cost initial_makespan;   ///< makespan of the re-derived input assignment
  Cost final_makespan;     ///< makespan after the search
  std::size_t moves = 0;   ///< accepted single-task moves
  std::size_t evaluations = 0;  ///< schedules evaluated
};

/// First-improvement hill climbing from `s`'s assignment. The result is
/// always feasible; its makespan never exceeds the makespan of the input
/// assignment re-timed by list scheduling (which may differ slightly from
/// s.makespan() when s was built with a different intra-processor order).
/// Tasks are swept in descending finish time so makespan-critical tasks
/// move first.
ImproveResult improve_schedule(const TaskGraph& g, const Schedule& s,
                               const ImproveOptions& options = {});

/// Options for anneal_schedule.
struct AnnealOptions {
  std::size_t iterations = 5000;  ///< single-task-move proposals
  /// Initial acceptance temperature as a fraction of the starting
  /// makespan; cools geometrically to ~1e-3 of it over the run.
  double initial_temp_fraction = 0.05;
  std::uint64_t seed = 1;
};

/// Simulated annealing over the same move space as improve_schedule
/// (random single-task processor moves, timing re-derived per proposal).
/// Escapes the single-move local optima hill climbing gets stuck in, at
/// `iterations` full re-evaluations of cost. Keeps the best schedule seen.
ImproveResult anneal_schedule(const TaskGraph& g, const Schedule& s,
                              const AnnealOptions& options = {});

}  // namespace flb
