#pragma once

#include <span>
#include <vector>

#include "flb/util/types.hpp"

/// \file schedule.hpp
/// The schedule produced by every algorithm in this library: for each task a
/// processor PROC(t), start time ST(t) and finish time FT(t) (paper
/// Section 2), plus per-processor timelines and ready times PRT(p).

namespace flb {

/// Where and when one task executes.
struct Placement {
  ProcId proc = kInvalidProc;
  Cost start = kUndefinedTime;
  Cost finish = kUndefinedTime;
};

/// A (partial or complete) non-preemptive schedule. Each processor's
/// timeline is kept sorted by start time; assign() rejects any placement
/// that would overlap an existing task, so by construction the timeline is
/// always feasible per-processor. Placements may land in idle gaps between
/// already-assigned tasks (insertion-based schedulers rely on this; plain
/// list schedulers only ever append). Precedence and communication
/// feasibility are the scheduler's responsibility and are re-checked
/// independently by validate_schedule().
class Schedule {
 public:
  /// An empty schedule over `num_procs` processors for `num_tasks` tasks.
  Schedule(ProcId num_procs, TaskId num_tasks);

  /// Re-dimension to an empty schedule over `num_procs` processors for
  /// `num_tasks` tasks, keeping all storage capacity (including each
  /// per-processor timeline's). Re-running a same-shape workload through a
  /// reset schedule therefore allocates nothing — the batch-serving hot
  /// path (flb::serve) depends on this.
  void reset(ProcId num_procs, TaskId num_tasks);

  /// Record that task t runs on processor p during [start, finish).
  /// Requirements: t unscheduled, p in range, start >= 0,
  /// finish >= start, and [start, finish) overlaps no task already on p.
  /// Appends are O(1) amortized; mid-timeline insertion costs O(k) for the
  /// k tasks already on p.
  void assign(TaskId t, ProcId p, Cost start, Cost finish);

  /// The earliest start >= `earliest` at which an execution of `duration`
  /// fits on p — either inside an idle gap between assigned tasks or after
  /// the last one. With duration 0 this is simply the earliest idle
  /// instant >= `earliest`. O(k) for the k tasks on p.
  [[nodiscard]] Cost earliest_gap(ProcId p, Cost earliest,
                                  Cost duration) const;

  /// True iff t has been assigned.
  [[nodiscard]] bool is_scheduled(TaskId t) const {
    return placements_[t].proc != kInvalidProc;
  }

  /// Full placement record of a scheduled task.
  [[nodiscard]] const Placement& placement(TaskId t) const {
    return placements_[t];
  }

  /// PROC(t). Task must be scheduled.
  [[nodiscard]] ProcId proc(TaskId t) const { return placements_[t].proc; }

  /// ST(t). Task must be scheduled.
  [[nodiscard]] Cost start(TaskId t) const { return placements_[t].start; }

  /// FT(t). Task must be scheduled.
  [[nodiscard]] Cost finish(TaskId t) const { return placements_[t].finish; }

  /// Processor ready time PRT(p): finish time of the last task on p, or 0
  /// for an empty processor.
  [[nodiscard]] Cost proc_ready_time(ProcId p) const { return prt_[p]; }

  /// Tasks on processor p in execution order.
  [[nodiscard]] std::span<const TaskId> tasks_on(ProcId p) const {
    return timelines_[p];
  }

  /// Number of processors this schedule spans.
  [[nodiscard]] ProcId num_procs() const {
    return static_cast<ProcId>(timelines_.size());
  }

  /// Number of tasks this schedule was sized for.
  [[nodiscard]] TaskId num_tasks() const {
    return static_cast<TaskId>(placements_.size());
  }

  /// Number of tasks assigned so far.
  [[nodiscard]] TaskId num_scheduled() const { return num_scheduled_; }

  /// True iff every task has been assigned.
  [[nodiscard]] bool complete() const {
    return num_scheduled_ == num_tasks();
  }

  /// Schedule length T_par = max_p PRT(p) (paper Section 2).
  [[nodiscard]] Cost makespan() const;

 private:
  std::vector<Placement> placements_;
  std::vector<std::vector<TaskId>> timelines_;
  std::vector<Cost> prt_;
  TaskId num_scheduled_ = 0;
};

}  // namespace flb
