#pragma once

#include "flb/util/error.hpp"
#include "flb/util/types.hpp"

/// \file machine.hpp
/// The machine model of Section 2: a set of P homogeneous processors in a
/// clique topology; inter-processor communication is contention-free, and
/// communication between tasks on the same processor costs zero.
///
/// Because the machine is homogeneous and fully connected, the model is
/// fully described by P; the class exists to make processor counts a typed,
/// validated quantity in the public API and to centralize the cost rule.

namespace flb {

class MachineModel {
 public:
  /// A machine with `p` identical, fully connected processors. p >= 1.
  explicit MachineModel(ProcId p) : num_procs_(p) {
    FLB_REQUIRE(p >= 1, "MachineModel: at least one processor required");
  }

  /// Number of processors P.
  [[nodiscard]] ProcId num_procs() const { return num_procs_; }

  /// Cost of sending a message of nominal cost `comm` from processor `from`
  /// to processor `to`: zero when both endpoints coincide (the paper's
  /// zero-intra-processor rule), the full edge cost otherwise.
  [[nodiscard]] static Cost comm_cost(ProcId from, ProcId to, Cost comm) {
    return from == to ? 0.0 : comm;
  }

 private:
  ProcId num_procs_;
};

}  // namespace flb
