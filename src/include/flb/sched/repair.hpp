#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "flb/core/flb.hpp"
#include "flb/graph/task_graph.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/sim/topology.hpp"

/// \file repair.hpp
/// Online schedule repair after fail-stop failures, slowdown faults and
/// dropped messages.
///
/// A compile-time schedule is built for P reliable processors; when the
/// machine degrades mid-execution the remaining work must be re-mapped onto
/// what is left. repair_schedule() consumes the partial execution observed
/// by the fault-injecting simulator and produces a *continuation schedule*:
/// every task of the executed past keeps its observed placement, and
/// everything else — work the dead processors lost, work queued behind a
/// throttled processor, producers of permanently dropped messages — is
/// placed on surviving processors, no earlier than the repair's release
/// instant.
///
/// Degraded-but-alive processors are treated as *related machines*
/// (sched/hetero): a processor throttled to speed s executes remaining work
/// at comp / s, so the EST/PRT coupling of the resumed FLB engine naturally
/// drains queued work away from it. Tasks killed mid-execution resume from
/// their last durable checkpoint: only the unprotected remainder is
/// re-planned (RepairResult::checkpoint_work_saved accounts the difference).
///
/// Two strategies:
///  * kFlbResume re-runs the paper's two-candidate FLB step
///    (FlbScheduler::resume) over the survivors, seeded with the executed
///    prefix and the degraded speeds — the quality path.
///  * kGreedy appends remaining tasks in topological order, each on the
///    processor minimizing its earliest start — the graceful-degradation
///    path, used automatically when fewer than two processors survive.
///
/// Data produced by tasks that finished on a dead processor is assumed to
/// be recoverable (in flight or replicated); consumers pay the normal
/// remote communication cost for it. Data lost to a *dropped message* is
/// not: by default such partial runs are refused, but with
/// DroppedDataPolicy::kReexecuteProducers the producing task — and every
/// transitive successor, whose inputs are now stale — is rolled back and
/// re-executed on a survivor. See docs/fault_model.md.
///
/// Recovery-aware give-back: when the plan rejoins killed processors,
/// repair computes two continuations — a *no-give-back baseline* over the
/// never-killed processors, and a *recovery-aware* continuation that also
/// admits each rejoined processor from its rejoin instant with cold caches
/// (re-fetch pricing on its pre-reboot data) — and keeps the one with the
/// strictly smaller makespan. The recovery continuation's EST-minimizing
/// selection is the per-task opportunistic give-back decision; keeping the
/// better of the two guarantees the result is never worse than refusing
/// the recovered capacity. With RepairOptions::topology set, communication
/// in both continuations is priced over the routed interconnect
/// (comm * hops) rather than the paper's clique; adding
/// RepairOptions::link_busy upgrades that to the store-and-forward
/// link-busy model of flb::platform::CostModel, where every placement
/// reserves its incoming routes and later transfers queue behind them —
/// a contended link can steer migrated work to a different survivor.
/// The reservations the chosen continuation committed are returned in
/// RepairResult::link_occupancies, auditable with
/// validate_link_occupancies.

namespace flb {

/// How the continuation schedule is computed.
enum class RepairStrategy {
  kAuto,       ///< kFlbResume with >= 2 survivors, else kGreedy
  kFlbResume,  ///< the incremental FLB step over the survivors
  kGreedy,     ///< topological min-EST append (degraded mode)
};

/// What to do when the partial run permanently dropped a message.
enum class DroppedDataPolicy {
  kRefuse,              ///< throw flb::Error (PR 1 behavior)
  kReexecuteProducers,  ///< roll back producer + transitive successors
};

/// Options for repair_schedule().
struct RepairOptions {
  RepairStrategy strategy = RepairStrategy::kAuto;
  FlbOptions flb;  ///< options for the resumed FLB engine (tie-break, seed)
  DroppedDataPolicy dropped_data = DroppedDataPolicy::kRefuse;
  /// Repair horizon: the instant the repair is computed. Tasks that
  /// *started* at or after the horizon are re-planned even if the partial
  /// run finished them — this is how a slowdown-only episode (where nothing
  /// dies and the run limps to completion) re-balances queued work off a
  /// throttled processor: set the horizon to the slowdown onset and
  /// everything not yet started by then is up for migration. The default
  /// (kInfiniteTime) keeps every finished task fixed, the PR 1 semantics.
  Cost horizon = kInfiniteTime;
  /// Routed interconnect for the continuation's communication pricing (not
  /// owned; must outlive the call; node count must match the schedule's
  /// processor count). Null = the paper's clique.
  const Topology* topology = nullptr;
  /// Price the continuation's communication with the store-and-forward
  /// link-busy cost model (requires `topology`): placements reserve their
  /// incoming routes, so transfers crossing a contended link queue behind
  /// earlier reservations instead of overlapping for free.
  bool link_busy = false;
  /// Admit processors that the plan rejoins after a reboot (keeping the
  /// better of the recovery-aware and no-give-back continuations). False
  /// restricts placement to never-killed processors — the baseline the
  /// give-back is measured against.
  bool give_back = true;
  /// Suspected-dead processors (runtime/failure_detector.hpp): each one is
  /// listed as failed in `plan` — the controller believes it died and
  /// migrates its queue — but its belief may be wrong, so its in-flight
  /// work is *hedged* rather than written off. For each suspect, the first
  /// task that had started on it per `nominal` and is still unfinished at
  /// the horizon keeps its placement and start (lifted as needed to stay
  /// feasible against the fixed prefix, predecessor arrivals priced through
  /// the platform cost model) instead of migrating. If the suspect is
  /// exonerated the pinned task's progress was never lost; if the death is
  /// confirmed, a later repair (without the suspect entry) migrates it like
  /// any other unfinished task. Entries must be below the processor count.
  std::vector<ProcId> suspects;
  /// Tasks that must not be pinned on a suspect (not owned; one entry per
  /// task when set): the controller excludes tasks it has already observed
  /// killed — known-lost work is not worth hedging.
  const std::vector<char>* pin_exclude = nullptr;
  /// Processors the controller cannot currently reach (a partial network
  /// partition separates them from it) but does NOT believe dead: they are
  /// excluded from new placements — the controller could not install work
  /// on them anyway — and, because it can neither re-dispatch nor cancel
  /// what such a processor already holds, the whole not-yet-started tail
  /// of its dispatch list is pinned in place (placements and starts kept,
  /// lifted only to stay feasible), as far as every input stays within the
  /// fixed-or-pinned prefix; the first task that would need a re-planned
  /// producer ends the pin run and migrates with the rest. The queue keeps
  /// running behind the partition; on heal the reconciliation repair banks
  /// whatever finished, first-completion-wins. Unlike `suspects`, an
  /// unreachable processor is not listed as failed in `plan`: its speed,
  /// availability and fixed prefix are those of a live machine. Entries
  /// must be below the processor count, and at least one admitted
  /// processor must remain reachable. A processor listed in both
  /// `suspects` and `unreachable` follows the suspect semantics (one
  /// in-flight hedge only).
  std::vector<ProcId> unreachable;
};

/// Outcome of one repair.
struct RepairResult {
  explicit RepairResult(Schedule s) : schedule(std::move(s)) {}

  Schedule schedule;             ///< full continuation (prefix + new work)
  RepairStrategy used =
      RepairStrategy::kFlbResume;  ///< strategy actually applied
  std::size_t migrated_tasks = 0;  ///< tasks (re)placed by the repair
  ProcId survivors = 0;      ///< processors alive at the end of the episode
  ProcId degraded_procs = 0;       ///< alive processors with speed < 1
  ProcId recovered_procs = 0;  ///< processors that were killed and rejoined
  /// Migrated tasks the chosen continuation placed on recovered processors
  /// (0 when the no-give-back baseline won or nothing rejoined).
  std::size_t given_back_tasks = 0;
  Cost work_given_back = 0.0;  ///< remaining work of those tasks
  /// Summed processor-downtime (kill -> rejoin windows, an unclosed kill
  /// extending to the continuation's makespan) — capacity the episode took
  /// away.
  Cost time_degraded = 0.0;
  /// Summed (makespan - rejoin instant) over recovered processors —
  /// capacity the rejoins handed back within the continuation.
  Cost time_recovered = 0.0;
  std::size_t reexecuted_tasks = 0;  ///< finished tasks rolled back & redone
  Cost checkpoint_work_saved = 0.0;  ///< killed work resumed from checkpoints
  /// In-flight tasks kept on their suspected-dead or unreachable processor
  /// as a speculative hedge (RepairOptions::suspects / unreachable), at
  /// most one per processor.
  std::vector<TaskId> pinned_tasks;
  /// Processors excluded from new placements as unreachable-but-alive
  /// (RepairOptions::unreachable), deduplicated.
  ProcId unreachable_procs = 0;
  Cost release_time = 0.0;  ///< earliest instant migrated work may start
  double repair_millis = 0.0;  ///< wall-clock cost of computing the repair
  /// Expected wall duration per task in `schedule`, computed independently
  /// of the placement engine: the observed duration for fixed tasks, the
  /// speed-scaled checkpoint-adjusted remainder for migrated ones. Feeds
  /// the durations-aware validate_schedule overload, and doubles as
  /// SimOptions::work_override to replay the continuation (fault-free)
  /// under any network model.
  std::vector<Cost> durations;
  /// Link reservations committed by the chosen continuation under
  /// RepairOptions::link_busy (empty otherwise): one entry per hop of
  /// every remote transfer, auditable with validate_link_occupancies.
  std::vector<platform::LinkOccupancy> link_occupancies;
};

/// Build a continuation schedule for `g` after executing `nominal` under
/// `plan` produced the partial run `partial` (see simulate()). Fixed tasks
/// keep their observed placement; the rest are placed on processors the
/// (resolved) plan never kills, starting at or after the release instant —
/// the latest death time, raised to the horizon when one is given and to
/// the latest observed finish of any rolled-back task. Throws flb::Error if
/// the plan is malformed, kills every processor, or dropped messages under
/// DroppedDataPolicy::kRefuse.
RepairResult repair_schedule(const TaskGraph& g, const Schedule& nominal,
                             const SimResult& partial, const FaultPlan& plan,
                             const RepairOptions& options = {});

}  // namespace flb
