#pragma once

#include <cstddef>
#include <vector>

#include "flb/core/flb.hpp"
#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"

/// \file repair.hpp
/// Online schedule repair after fail-stop processor failures.
///
/// A compile-time schedule is built for P reliable processors; when one
/// dies mid-execution the remaining work must be re-mapped onto the
/// survivors. repair_schedule() consumes the partial execution observed by
/// the fault-injecting simulator and produces a *continuation schedule*:
/// every task that finished keeps its observed placement (the past cannot
/// be changed), and everything else — including the work the dead
/// processor lost — is placed on surviving processors, no earlier than the
/// failure instant.
///
/// Two strategies:
///  * kFlbResume re-runs the paper's two-candidate FLB step
///    (FlbScheduler::resume) over the survivors, seeded with the executed
///    prefix — the quality path.
///  * kGreedy appends remaining tasks in topological order, each on the
///    processor minimizing its earliest start — the graceful-degradation
///    path, used automatically when fewer than two processors survive.
///
/// Data produced by tasks that finished on a dead processor is assumed to
/// be recoverable (in flight or replicated); consumers pay the normal
/// remote communication cost for it. See docs/fault_model.md.

namespace flb {

/// How the continuation schedule is computed.
enum class RepairStrategy {
  kAuto,       ///< kFlbResume with >= 2 survivors, else kGreedy
  kFlbResume,  ///< the incremental FLB step over the survivors
  kGreedy,     ///< topological min-EST append (degraded mode)
};

/// Options for repair_schedule().
struct RepairOptions {
  RepairStrategy strategy = RepairStrategy::kAuto;
  FlbOptions flb;  ///< options for the resumed FLB engine (tie-break, seed)
};

/// Outcome of one repair.
struct RepairResult {
  Schedule schedule;             ///< full continuation (prefix + new work)
  RepairStrategy used =
      RepairStrategy::kFlbResume;  ///< strategy actually applied
  std::size_t migrated_tasks = 0;  ///< tasks (re)placed by the repair
  ProcId survivors = 0;            ///< processors still alive
  Cost release_time = 0.0;  ///< earliest instant migrated work may start
  double repair_millis = 0.0;  ///< wall-clock cost of computing the repair
};

/// Build a continuation schedule for `g` after executing `nominal` under
/// `plan` produced the partial run `partial` (see simulate()). Tasks with a
/// defined finish in `partial` are fixed; the rest are placed on processors
/// the plan never kills, starting at or after the latest failure time.
/// Throws flb::Error if the plan kills every processor or drops messages
/// (dropped data cannot be repaired by re-mapping alone).
RepairResult repair_schedule(const TaskGraph& g, const Schedule& nominal,
                             const SimResult& partial, const FaultPlan& plan,
                             const RepairOptions& options = {});

}  // namespace flb
