#pragma once

#include <iosfwd>
#include <string>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"

/// \file gantt.hpp
/// Plain-text Gantt chart rendering of a schedule — one row per processor,
/// time flowing left to right, each task drawn as a labelled box. Used by
/// the examples and handy when debugging scheduler changes.

namespace flb {

/// Render `s` as an ASCII Gantt chart scaled to about `columns` characters
/// of timeline. Tasks too narrow to label are drawn as '#'.
void write_gantt(std::ostream& os, const TaskGraph& g, const Schedule& s,
                 std::size_t columns = 100);

/// Convenience: chart as a string.
std::string to_gantt(const TaskGraph& g, const Schedule& s,
                     std::size_t columns = 100);

/// Tabular listing of the schedule: one line per task in start-time order
/// with processor, ST and FT — the format of the paper's Table 1 last
/// column ("t -> p, [ST - FT]").
void write_schedule_listing(std::ostream& os, const Schedule& s);

/// Render the schedule as a standalone SVG Gantt chart: one lane per
/// processor, one rounded rectangle per task (coloured from a small
/// rotating palette keyed by task id), a time axis, and hover tooltips
/// with exact start/finish values. `width_px` is the drawing width of the
/// timeline area.
void write_svg_gantt(std::ostream& os, const TaskGraph& g, const Schedule& s,
                     std::size_t width_px = 960);

/// Convenience: SVG text as a string.
std::string to_svg_gantt(const TaskGraph& g, const Schedule& s,
                         std::size_t width_px = 960);

}  // namespace flb
