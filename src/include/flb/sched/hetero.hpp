#pragma once

#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sched/validator.hpp"

/// \file hetero.hpp
/// Heterogeneous (related/uniform) machine model: processors differ by a
/// positive speed factor, so task t takes comp(t) / speed(p) on processor
/// p; the network stays a contention-free clique. The pricing itself lives
/// in flb::platform::CostModel — HeteroMachine is the thin speed-focused
/// view the comparison algorithms consume, and exposes its underlying
/// model through cost_model().
///
/// This extends the paper's homogeneous model in the direction its
/// successors took (HEFT/CPOP, `algos/heft.hpp`). A machine with all
/// speeds 1 is exactly the paper's model, which the tests use to
/// cross-check the heterogeneous code paths against the homogeneous ones.

namespace flb {

class HeteroMachine {
 public:
  /// A machine with the given per-processor speed factors (all > 0).
  explicit HeteroMachine(std::vector<double> speeds);

  /// P identical unit-speed processors — the paper's machine.
  static HeteroMachine uniform(ProcId num_procs);

  [[nodiscard]] ProcId num_procs() const { return model_.num_procs(); }

  /// Speed factor of processor p.
  [[nodiscard]] double speed(ProcId p) const { return model_.speed(p); }

  /// Execution time of a task with computation cost `comp` on p.
  [[nodiscard]] Cost exec_time(Cost comp, ProcId p) const {
    return model_.exec_work(comp, p);
  }

  /// Average execution time of `comp` over all processors (HEFT's
  /// rank weights).
  [[nodiscard]] Cost mean_exec_time(Cost comp) const {
    return model_.mean_exec_work(comp);
  }

  /// True iff every speed equals 1 (the homogeneous special case).
  [[nodiscard]] bool is_uniform() const { return uniform_; }

  /// The platform cost model backing this machine: a clique with the
  /// machine's speed factors.
  [[nodiscard]] const platform::CostModel& cost_model() const {
    return model_;
  }

 private:
  platform::CostModel model_;
  bool uniform_ = true;
};

/// Feasibility check for schedules on a heterogeneous machine: identical
/// to validate_schedule except that the expected duration of task t on
/// processor p is comp(t) / speed(p).
std::vector<Violation> validate_hetero_schedule(const TaskGraph& g,
                                                const HeteroMachine& machine,
                                                const Schedule& s,
                                                double tolerance = 1e-9);

/// True iff validate_hetero_schedule reports nothing.
bool is_valid_hetero_schedule(const TaskGraph& g,
                              const HeteroMachine& machine, const Schedule& s,
                              double tolerance = 1e-9);

struct FaultPlan;  // sim/faults.hpp

/// The degraded related-machines view of a faulty cluster: every processor
/// keeps speed 1.0 except those throttled by the plan's (resolved) slowdown
/// faults, whose speed is the product of their slowdown factors. Fail-stop
/// deaths do not change speeds — liveness is tracked separately by the
/// repair path. This is the bridge the ISSUE's tentpole asks for: a
/// degraded-but-alive processor becomes a slower related machine that
/// speed-scaled EST/PRT re-balancing can drain work away from.
HeteroMachine degraded_machine(const FaultPlan& plan, ProcId num_procs);

}  // namespace flb
