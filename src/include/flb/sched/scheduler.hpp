#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"

/// \file scheduler.hpp
/// The uniform scheduler interface and a name-based registry over every
/// algorithm in the library (FLB, ETF, MCP, FCP, DSC-LLB), used by the
/// benchmark harness, the examples and the cross-algorithm tests.

namespace flb {

/// A compile-time task scheduler for a bounded number of processors.
/// Implementations are deterministic given their construction-time seed.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short algorithm name as used in the paper ("FLB", "ETF", "MCP",
  /// "FCP", "DSC-LLB").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Schedule `g` on `num_procs` homogeneous processors. The returned
  /// schedule is complete and feasible. May be called repeatedly; calls are
  /// independent (internal RNG state, if any, advances between calls, which
  /// only affects documented random tie-breaking).
  [[nodiscard]] virtual Schedule run(const TaskGraph& g,
                                     ProcId num_procs) = 0;
};

/// Names of the paper's algorithms in canonical (Fig. 4 legend) order:
/// MCP, ETF, DSC-LLB, FCP, FLB. The figure-regenerating benches iterate
/// exactly this set.
std::vector<std::string> scheduler_names();

/// All registered algorithms: the paper's five plus the extra baselines
/// (HLFET, DLS, MCP-I). Used by the wider integration tests and the
/// extended comparison bench.
std::vector<std::string> extended_scheduler_names();

/// Construct a scheduler by registry name; throws flb::Error for unknown
/// names. `seed` feeds algorithms with documented random tie-breaking (MCP);
/// the others ignore it.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          std::uint64_t seed = 1);

}  // namespace flb
