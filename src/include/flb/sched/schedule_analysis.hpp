#pragma once

#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"

/// \file schedule_analysis.hpp
/// Post-hoc diagnostics of complete schedules: what bound each task's
/// start time, the binding chain that determines the makespan, and
/// per-processor utilization. Used by flb_sched --analyze and handy when
/// judging *why* one algorithm's schedule is longer than another's
/// (processor-starved vs communication-bound).

namespace flb {

/// What determined a task's start time.
enum class Binding {
  kEntry,      ///< started at time 0 with nothing to wait for
  kProcessor,  ///< waited for the previous task on its processor
  kLocalData,  ///< waited for a same-processor predecessor's result
  kRemoteData, ///< waited for a message from another processor
  /// Started strictly later than every constraint (idle gap chosen by an
  /// insertion scheduler, or scheduler-imposed order).
  kSlack,
};

/// Binding classification of one task.
struct TaskBinding {
  Binding binding = Binding::kEntry;
  /// The task that imposed the binding constraint (the previous task on
  /// the processor, or the predecessor whose data arrived last);
  /// kInvalidTask for kEntry and kSlack.
  TaskId blocker = kInvalidTask;
};

/// Classify every task of a complete schedule. Ties between processor and
/// data constraints resolve to the data side (the message was the *reason*
/// the processor could not be released earlier elsewhere).
std::vector<TaskBinding> classify_bindings(const TaskGraph& g,
                                           const Schedule& s,
                                           double tolerance = 1e-9);

/// The binding chain of the makespan: starting from the latest-finishing
/// task, repeatedly step to the blocker until an entry/slack-bound task.
/// Returned in execution order (first element starts the chain). Its
/// total computation plus gaps spans the whole makespan.
std::vector<TaskId> critical_chain(const TaskGraph& g, const Schedule& s,
                                   double tolerance = 1e-9);

/// Utilization summary of a complete schedule.
struct UtilizationReport {
  std::vector<Cost> busy_per_proc;   ///< computation time per processor
  Cost makespan = 0.0;
  double mean_utilization = 0.0;     ///< mean busy / makespan over procs
  /// Fraction of tasks (excluding entry-bound) bound by each cause.
  double processor_bound = 0.0;
  double local_data_bound = 0.0;
  double remote_data_bound = 0.0;
  double slack_bound = 0.0;
};

/// Compute the report (classify_bindings included).
UtilizationReport analyze_utilization(const TaskGraph& g, const Schedule& s,
                                      double tolerance = 1e-9);

/// Short human-readable name of a binding kind.
const char* to_string(Binding binding);

}  // namespace flb
