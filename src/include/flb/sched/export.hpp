#pragma once

#include <iosfwd>
#include <string>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"

/// \file export.hpp
/// Machine-readable schedule exporters:
///
///  * JSON — a compact self-describing document (graph name, processor
///    count, makespan, one record per task) for downstream tooling;
///  * Chrome trace-event format — load the file in chrome://tracing or
///    https://ui.perfetto.dev to inspect a schedule as a real timeline,
///    one track per processor.

namespace flb {

/// Write the schedule as a single JSON object:
/// {"graph": ..., "procs": P, "makespan": M,
///  "tasks": [{"id":0,"proc":1,"start":...,"finish":...,"comp":...}, ...]}
void write_schedule_json(std::ostream& os, const TaskGraph& g,
                         const Schedule& s);

/// Write the schedule in Chrome trace-event JSON (array form). Durations
/// are emitted in microseconds with one time unit = 1 us; processors map
/// to thread ids within a single process.
void write_chrome_trace(std::ostream& os, const TaskGraph& g,
                        const Schedule& s);

/// Convenience string forms.
std::string to_schedule_json(const TaskGraph& g, const Schedule& s);
std::string to_chrome_trace(const TaskGraph& g, const Schedule& s);

/// Plain-text schedule serialization, round-trippable (companion to the
/// graph format in graph/serialize.hpp):
///
///     flb-schedule 1
///     procs <P>
///     tasks <V>
///     a <task> <proc> <start> <finish>     (one line per assignment)
///
/// '#' comment lines allowed. Used by the flb_verify tool to validate
/// schedules produced by external programs.
void write_schedule_text(std::ostream& os, const Schedule& s);

/// Parse the text format. Enforces Schedule's structural invariants
/// (ids in range, no double assignment, per-processor non-overlap); use
/// validate_schedule afterwards for precedence feasibility against a graph.
Schedule read_schedule_text(std::istream& is);

/// Convenience string forms.
std::string to_schedule_text(const Schedule& s);
Schedule schedule_from_text(const std::string& text);

}  // namespace flb
