#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"

/// \file metrics.hpp
/// Schedule-quality metrics used throughout the paper's evaluation
/// (Section 6): schedule length, speedup, normalized schedule length (NSL),
/// efficiency, lower bounds used as sanity baselines in tests, and the
/// robustness metrics of the fault-tolerance subsystem (repair.hpp).

namespace flb {

/// Speedup S = T_seq / T_par where T_seq is the sum of all computation
/// costs (the one-processor schedule with no communication) — the metric of
/// paper Fig. 3. Returns 0 for an empty schedule.
Cost speedup(const TaskGraph& g, const Schedule& s);

/// Efficiency = speedup / P.
Cost efficiency(const TaskGraph& g, const Schedule& s);

/// Normalized schedule length: `makespan / reference_makespan`. The paper's
/// Fig. 4 normalizes against MCP's schedule length.
Cost normalized_schedule_length(Cost makespan, Cost reference_makespan);

/// Load imbalance: max processor busy time divided by mean busy time over
/// the processors that received work; 1.0 is perfectly balanced. Returns 0
/// for an empty schedule.
Cost load_imbalance(const TaskGraph& g, const Schedule& s);

/// Busy time (sum of computation) on processor p.
Cost busy_time(const TaskGraph& g, const Schedule& s, ProcId p);

/// A lower bound on any feasible makespan on P processors:
/// max(computation-only critical path, T_seq / P). No schedule, by any
/// algorithm, can beat this; used as a test oracle.
Cost makespan_lower_bound(const TaskGraph& g, ProcId num_procs);

struct SimResult;    // sim/machine_sim.hpp
struct RepairResult; // sched/repair.hpp
struct FaultPlan;    // sim/faults.hpp

/// How one declared failure domain fared during an episode: how many of its
/// members were killed or throttled, and how much unprotected work kills on
/// its members discarded. Overlapping domains double-count by design — each
/// domain reports its own blast radius.
struct DomainImpact {
  std::string name;         ///< the FailureDomain's name
  ProcId members = 0;       ///< domain size
  ProcId killed = 0;        ///< members that died (any cause)
  ProcId throttled = 0;     ///< surviving members with final speed < 1
  Cost work_lost = 0.0;     ///< unprotected work lost on the members
};

/// How gracefully one (schedule, fault, repair) episode degraded.
struct RobustnessMetrics {
  Cost nominal_makespan = 0.0;   ///< the undisturbed analytic makespan
  Cost repaired_makespan = 0.0;  ///< makespan of the continuation schedule
  Cost degradation_ratio = 0.0;  ///< repaired / nominal (>= 0; ~1 is ideal)
  Cost work_lost = 0.0;          ///< unprotected computation kills discarded
  Cost work_saved = 0.0;         ///< checkpointed work the kills spared
  Cost checkpoint_overhead = 0.0;  ///< wall time spent writing checkpoints
  Cost dead_proc_idle = 0.0;     ///< capacity lost to dead processors
  std::size_t migrated_tasks = 0;  ///< tasks the repair had to re-place
  std::size_t reexecuted_tasks = 0;  ///< finished tasks rolled back & redone
  ProcId degraded_procs = 0;       ///< alive-but-throttled processors
  std::size_t retries = 0;         ///< message retransmissions observed
  double repair_millis = 0.0;      ///< repair latency (wall clock)
  // Recovery accounting (all zero when nothing rejoins).
  ProcId recovered_procs = 0;    ///< processors that were killed and rejoined
  Cost time_degraded = 0.0;      ///< summed processor downtime (kill windows)
  Cost time_recovered = 0.0;     ///< capacity handed back by rejoins
  std::size_t given_back_tasks = 0;  ///< migrated tasks on recovered procs
  Cost work_given_back = 0.0;        ///< remaining work of those tasks
  std::vector<DomainImpact> domains;  ///< per-domain degradation (with plan)
};

/// Summarize one fault episode: `nominal` is the undisturbed schedule,
/// `faulty` the partial execution observed under the fault plan, and
/// `repair` the continuation built by repair_schedule(). `domains` is left
/// empty — use the overload below for the per-domain breakdown.
RobustnessMetrics robustness_metrics(const Schedule& nominal,
                                     const SimResult& faulty,
                                     const RepairResult& repair);

/// As above, additionally resolving `plan` to attribute deaths, throttling
/// and lost work to each declared failure domain.
RobustnessMetrics robustness_metrics(const Schedule& nominal,
                                     const SimResult& faulty,
                                     const RepairResult& repair,
                                     const FaultPlan& plan);

}  // namespace flb
