#pragma once

#include <vector>

#include "flb/analysis/lint.hpp"
#include "flb/graph/task_graph.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/runtime/recovery_runtime.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"

/// \file audit.hpp
/// The runtime auditor (flb::analysis::audit_runtime): a rule engine that
/// independently verifies the *semantics* of one online-recovery episode —
/// the event log, the belief stream, the repair trail and the summary
/// digests of a runtime::RuntimeResult — against the canonicalized fault
/// plan the episode executed under.
///
/// The schedule linter (lint.hpp) audits what the *scheduler* claims; this
/// module audits what the *runtime* claims. Everything the recovery loop
/// reports — "this message was dropped because its link was cut with no
/// detour", "this processor was confirmed dead by a quorum", "this repair
/// consumed exactly that debounced batch" — is re-derived here from the
/// plan helpers (resolve_faults, resolve_partitions, resolve_message,
/// FailureDetector) without sharing any state with the controller or the
/// simulator. A bug that makes the runtime lie consistently to itself
/// (producer and checker sharing the broken code path) cannot fool this
/// auditor, because it recomputes every claim from the plan alone.
///
/// Rule families (all error severity; docs/analysis.md has the catalogue):
///
///  * **audit-event-order** — the log is sorted by SimEvent::key() with no
///    duplicate keys, every timestamp finite and non-negative, every id in
///    range and every link event canonical (proc < proc2).
///  * **audit-liveness-pairing** / **audit-partition-pairing** — kFailure/
///    kRejoin and kLinkPartitioned/kLinkHealed events match the resolved
///    plan's kill/rejoin and outage windows exactly (multiset equality)
///    and alternate correctly per processor / per link.
///  * **audit-partition-drop** — every kMessageDropped event re-resolves to
///    either an exhausted retry budget or a genuine partition drop: the
///    direct link cut at the send instant, no live detour, no future heal
///    that restores a path; timestamps and drop counts must agree.
///  * **audit-belief-causality** — consumed beliefs are time-ordered and
///    per-processor legal (suspect before confirm, exoneration only of a
///    suspect), match the detector's pure re-derived stream, and every
///    exoneration coincides with an audible heartbeat arrival.
///  * **audit-quorum-soundness** — in gossip mode, every cluster-wide
///    suspicion/confirmation is backed by at least `quorum` observers that
///    are alive with an uncut direct link to the subject and whose own
///    re-derived streams concur.
///  * **audit-reservation-overlap** — per-link LinkOccupancy reservations
///    are well-formed and pairwise disjoint.
///  * **audit-checkpoint-provenance** — no kill event claims more durably
///    checkpointed work than the task ever ran, none claims any under a
///    policy that does not cover the task, and the final claims agree with
///    SimResult::checkpointed.
///  * **audit-repair-provenance** — every repair invocation traces to a
///    non-empty debounced batch inside its window, its horizon covers the
///    window, horizons are monotone, and every machine-level batch event
///    exists in the final log.
///  * **audit-result-consistency** — the result's digests, makespan and
///    completeness flags are recomputed and must match.
///  * **audit-config** — the audit options describe an episode the plan
///    can actually produce (detector modes need a heartbeat section, ...).

namespace flb::analysis {

/// How the audited episode was run — mirrors the runtime::RuntimeOptions
/// the episode used; the auditor needs them to re-derive expectations (it
/// never reads the controller's state).
struct AuditOptions {
  double tolerance = 1e-9;  ///< absolute slack for time comparisons
  /// The controller's debounce window (RuntimeOptions::debounce): every
  /// repair batch must fit [observed_at, observed_at + debounce].
  Cost debounce = 0.0;
  /// The episode ran on detector beliefs (RuntimeOptions::use_detector);
  /// requires the plan's heartbeat section.
  bool use_detector = false;
  /// The episode used the gossip quorum aggregate
  /// (RuntimeOptions::use_gossip); enables audit-quorum-soundness.
  bool use_gossip = false;
  /// Concurring-observer threshold of the gossip aggregate.
  ProcId quorum = 2;
  /// Optional per-link reservation log to audit (not owned; e.g.
  /// platform::CostModel::occupancies() of a link-busy pricing model).
  /// nullptr skips audit-reservation-overlap.
  const std::vector<platform::LinkOccupancy>* occupancies = nullptr;
};

/// The audit rule catalogue (stable ids; documented in docs/analysis.md).
const std::vector<RuleInfo>& audit_rule_catalogue();

/// Audit one online-recovery episode: re-derive every claim in `result`
/// from `world` (the plan the episode executed under) and `g`, and report
/// each broken invariant as a structured diagnostic. `world` must already
/// pass FaultPlan::validate for the schedule's processor count. Shares the
/// Diagnostic / LintReport shape (and write_report / write_report_json)
/// with the schedule linter; a clean() report certifies the episode.
LintReport audit_runtime(const TaskGraph& g, const FaultPlan& world,
                         const runtime::RuntimeResult& result,
                         const AuditOptions& options = {});

}  // namespace flb::analysis
