#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flb/core/trace.hpp"
#include "flb/graph/task_graph.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sim/faults.hpp"

/// \file lint.hpp
/// The semantic schedule linter (flb::analysis): a rule engine that checks
/// a schedule — and, when available, the FLB execution trace that produced
/// it — against the paper's *selection invariants*, not just feasibility.
///
/// validate_schedule() proves a schedule is executable (no overlap, no
/// precedence violation); it cannot tell whether the scheduler still
/// implements the paper. A refactor of the hot path can keep every schedule
/// feasible while silently abandoning the ETF criterion ("schedule the
/// ready task that can start the earliest", Section 3) or the EP-type
/// classification theorem of the appendix — exactly the regressions the
/// golden-digest tests catch only as a bare hash mismatch. The linter
/// re-derives those invariants from scratch, step by step, and reports
/// *explainable* diagnostics: which rule, which step, which task, the
/// expected and the observed value, and a hint.
///
/// Three rule tiers (see docs/analysis.md for the rule catalogue with
/// paper citations):
///
///  * **feasibility** (error) — the validator's constraints lifted into
///    diagnostics, so any scheduler's output can be linted;
///  * **theorems** (error) — FLB/ETF selection invariants, decidable from
///    the execution trace: etf-conformance, ep-classification,
///    prt-monotone, trace-schedule-consistency;
///  * **quality** (warn/info) — legal but suspicious placements:
///    avoidable idle gaps, remote placement when a zero-comm local slot
///    existed, plus an info summary of the makespan against its lower
///    bound.
///
/// The linter is a checker, not a scheduler: it prices everything through
/// the platform CostModel with deliberate O(V * W * P * deg) replay cost,
/// sharing no state with the engine it audits.

namespace flb::analysis {

/// Diagnostic severity, ordered: info < warn < error.
enum class Severity { kInfo, kWarn, kError };

/// Sentinel for "no step" in diagnostics that are not tied to one trace row.
inline constexpr std::size_t kNoStep = static_cast<std::size_t>(-1);

/// One structured finding of the rule engine.
struct Diagnostic {
  std::string rule;                ///< rule id, e.g. "etf-conformance"
  Severity severity = Severity::kError;
  TaskId task = kInvalidTask;      ///< offending task, if any
  ProcId proc = kInvalidProc;      ///< offending processor, if any
  std::size_t step = kNoStep;      ///< trace row index, if any
  Cost expected = kUndefinedTime;  ///< value the invariant requires
  Cost actual = kUndefinedTime;    ///< value observed in the schedule/trace
  std::string message;             ///< what is wrong
  std::string hint;                ///< how to fix or where to look
};

/// Which rule tiers run and with what tolerance.
struct LintOptions {
  double tolerance = 1e-9;  ///< absolute slack for time comparisons
  bool feasibility = true;  ///< validator-tier error rules
  bool theorems = true;     ///< FLB selection-invariant rules (needs a trace)
  bool quality = true;      ///< warn/info rules
  /// Optional fault plan (not owned; must outlive the call). When set and
  /// it declares partial partitions, the feasibility tier additionally runs
  /// rule `partitioned-link`: no remote message may be scheduled across a
  /// link that is partitioned at its send instant (the producer's finish) —
  /// such a schedule silently assumes bandwidth the machine does not have
  /// at that moment (the simulator would reroute, delay or drop the
  /// transfer).
  const FaultPlan* faults = nullptr;
};

/// The linter's result: all diagnostics in detection order plus summaries.
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::kError); }
  [[nodiscard]] std::size_t warnings() const { return count(Severity::kWarn); }

  /// Highest severity present; kInfo when the report is empty.
  [[nodiscard]] Severity max_severity() const;

  /// True iff no error-severity diagnostic was produced.
  [[nodiscard]] bool clean() const { return errors() == 0; }
};

/// Static description of one rule, for documentation and CLI listings.
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

/// The full rule catalogue (stable ids; documented in docs/analysis.md).
const std::vector<RuleInfo>& rule_catalogue();

/// Lint any scheduler's output: feasibility-tier error rules plus the
/// quality tier. `model` prices communication and admission — pass
/// platform::CostModel::clique(s.num_procs()) for the paper's machine.
LintReport lint_schedule(const TaskGraph& g, const Schedule& s,
                         const platform::CostModel& model,
                         const LintOptions& options = {});

/// Lint a *continuation* schedule (sched/repair.hpp) whose per-task wall
/// times legitimately differ from comp(t): the feasibility tier runs the
/// durations-aware validate_schedule overload against `durations`
/// (slowdown-stretched remainders, checkpoint-write pauses, perturbed
/// runtimes; an entry of kUndefinedTime skips the duration check for that
/// task). Everything else matches lint_schedule above. This is how online
/// repair regressions surface as lint errors rather than silent infeasible
/// continuations — the flb::runtime loop and flb_lint --repair-at both
/// funnel every repaired schedule through here. `durations` must have one
/// entry per task.
LintReport lint_schedule(const TaskGraph& g, const Schedule& s,
                         const std::vector<Cost>& durations,
                         const platform::CostModel& model,
                         const LintOptions& options = {});

/// Lint an FLB run: everything lint_schedule checks plus the theorem tier,
/// replaying `rows` (from trace_flb) step by step against `s`. The trace
/// must describe the same run that produced `s`; rule
/// trace-schedule-consistency enforces exactly that. Only the paper's
/// clique machine is supported for the theorem tier (trace_flb never runs
/// routed); `model` must be a clique model over s.num_procs() processors.
LintReport lint_flb(const TaskGraph& g, const Schedule& s,
                    const std::vector<FlbTraceRow>& rows,
                    const platform::CostModel& model,
                    const LintOptions& options = {});

/// "info" / "warn" / "error".
const char* to_string(Severity s);

/// Human-readable report, one line per diagnostic plus a summary line.
void write_report(std::ostream& os, const LintReport& report);

/// Machine-readable report: {"diagnostics": [...], "counts": {...},
/// "max_severity": "..."}.
void write_report_json(std::ostream& os, const LintReport& report);

}  // namespace flb::analysis
