#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sim/machine_sim.hpp"

/// \file topology.hpp
/// Interconnect topologies and topology-aware schedule execution.
///
/// The paper assumes a clique with contention-free links (Section 2).
/// Real distributed-memory machines of its era (and today's) route
/// messages over sparse networks where links are shared. This module
/// executes a schedule computed under the paper's model on a machine with
/// an explicit topology: messages follow deterministic shortest-path
/// routes, each hop is store-and-forward (one full message time per hop),
/// and every link carries one transfer at a time. The bench_topology
/// ablation reports how much of the clique-model schedule quality survives
/// on meshes, rings and stars.

namespace flb {

/// An undirected interconnect with deterministic shortest-path routing
/// (ties resolve toward the smaller next-node id, so routes are stable).
class Topology {
 public:
  /// Fully connected network — the paper's assumption.
  static Topology clique(ProcId nodes);

  /// Bidirectional ring 0-1-...-(n-1)-0.
  static Topology ring(ProcId nodes);

  /// rows x cols 2-D mesh (no wraparound), node id = r * cols + c.
  static Topology mesh2d(ProcId rows, ProcId cols);

  /// rows x cols 2-D torus: the mesh plus wraparound links closing each row
  /// and column (dimensions of 1 or 2 add no extra links).
  static Topology torus2d(ProcId rows, ProcId cols);

  /// Star: node 0 is the hub, all others are leaves.
  static Topology star(ProcId nodes);

  /// Arbitrary undirected link list. The network must be connected.
  static Topology from_links(ProcId nodes,
                             std::vector<std::pair<ProcId, ProcId>> links);

  [[nodiscard]] ProcId num_nodes() const { return nodes_; }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }

  /// Hop distance between two nodes (0 for from == to).
  [[nodiscard]] std::size_t hops(ProcId from, ProcId to) const;

  /// The links of the route from `from` to `to`, in traversal order; each
  /// element is a dense link index usable for per-link bookkeeping.
  [[nodiscard]] std::vector<std::size_t> route(ProcId from, ProcId to) const;

  /// As route(), but writing into `out` (which must hold at least
  /// hops(from, to) elements) instead of allocating; returns the hop count
  /// written. Feeds platform::CostModel's per-pair route cache.
  std::size_t route_into(ProcId from, ProcId to,
                         std::span<std::size_t> out) const;

  /// Endpoints of a link by dense index (a < b).
  [[nodiscard]] std::pair<ProcId, ProcId> link(std::size_t id) const {
    return links_[id];
  }

  /// Network diameter (max hop distance over node pairs).
  [[nodiscard]] std::size_t diameter() const;

 private:
  Topology() = default;
  void build_routes();
  [[nodiscard]] std::size_t link_index(ProcId a, ProcId b) const;

  ProcId nodes_ = 0;
  std::vector<std::pair<ProcId, ProcId>> links_;      // a < b
  std::vector<std::vector<ProcId>> neighbours_;
  std::vector<ProcId> next_hop_;                       // [from * n + to]
  std::vector<std::size_t> hop_count_;                 // [from * n + to]
};

/// Extra outputs of a topology-aware run.
struct TopologySimResult {
  SimResult sim;                     ///< per-task times, makespan, messages
  std::size_t total_hops = 0;        ///< hops summed over all messages
  Cost max_link_busy = 0.0;          ///< busiest link's total transfer time
  Cost total_link_busy = 0.0;        ///< transfer time summed over links
};

/// Execute schedule `s` of `g` on `topology` (same node count as the
/// schedule's processor count). Store-and-forward routing: a message of
/// cost c takes c * latency_factor per hop, links serialize transfers in
/// global event order, same-processor messages are free. Dispatch
/// semantics match flb::simulate. `work_override` mirrors
/// SimOptions::work_override: entries other than kUndefinedTime replace a
/// task's computation — used to replay a repaired continuation (whose
/// migrated tasks resume from a checkpoint with only their remaining work)
/// under the routed model.
TopologySimResult simulate_on_topology(
    const TaskGraph& g, const Schedule& s, const Topology& topology,
    Cost latency_factor = 1.0,
    const std::vector<Cost>* work_override = nullptr);

}  // namespace flb
