#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "flb/util/types.hpp"

/// \file faults.hpp
/// Deterministic fault injection for the machine simulator.
///
/// The paper's machine (Section 2) is perfectly reliable: processors never
/// fail, messages always arrive, and runtimes equal their compile-time
/// estimates. A FaultPlan relaxes all three assumptions at once:
///
///  * **Fail-stop processor failures.** A processor listed in `failures`
///    dies at its failure time: the task it is executing is killed (its
///    work is lost), unstarted tasks on it never run, and it stays dead for
///    the rest of the simulation. Messages emitted by tasks that *finished*
///    before the failure are considered in flight and still delivered.
///  * **Message loss with bounded retry.** Every remote transfer attempt is
///    lost independently with `loss_probability`; a lost attempt is
///    retransmitted after a timeout that grows by `backoff` per retry, up
///    to `max_retries` retransmissions. A message whose final attempt is
///    also lost is dropped permanently — its consumer (and everything
///    behind it in that processor's dispatch order) never runs.
///  * **Message delay.** Independently of loss, a message is delayed with
///    `delay_probability`, multiplying its transfer time by `delay_factor`.
///  * **Runtime perturbation.** Each task's computation cost is scaled by a
///    factor drawn uniformly from [1 - runtime_spread, 1 + runtime_spread],
///    modelling compile-time estimates that drift at runtime.
///
/// All randomness is derived from `seed` plus the task id / edge slot being
/// perturbed, never from event order, so a plan yields bit-identical
/// outcomes across runs, network models and repair strategies.

namespace flb {

/// One fail-stop processor failure.
struct ProcFailure {
  ProcId proc = kInvalidProc;
  Cost time = 0.0;  ///< the processor is dead from this instant on
};

/// Per-message loss/delay model with bounded retry.
struct MessageFaults {
  double loss_probability = 0.0;   ///< per transmission attempt
  double delay_probability = 0.0;  ///< per message (applied once)
  double delay_factor = 2.0;       ///< transfer-time multiplier when delayed
  std::size_t max_retries = 3;     ///< retransmissions after the first attempt
  Cost retry_timeout = 1.0;        ///< wait before the first retransmission
  double backoff = 2.0;            ///< timeout multiplier per further retry
};

/// A complete, seeded description of everything that goes wrong during one
/// simulated execution. Default-constructed plans inject no faults.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<ProcFailure> failures;
  MessageFaults message;
  double runtime_spread = 0.0;  ///< comp scaled by uniform [1-s, 1+s], s < 1

  /// Convenience: a plan whose only fault is killing `proc` at `time`.
  [[nodiscard]] static FaultPlan single_failure(ProcId proc, Cost time);

  /// True iff the plan injects nothing (the simulator takes the fast path).
  [[nodiscard]] bool trivial() const;

  /// The instant `p` dies, or kInfiniteTime if the plan never kills it.
  [[nodiscard]] Cost death_time(ProcId p) const;

  /// Throws flb::Error unless probabilities are in [0,1], runtime_spread in
  /// [0,1), retry_timeout > 0, backoff >= 1, and every failure names a
  /// processor below `num_procs` with a non-negative, finite time.
  void validate(ProcId num_procs) const;
};

/// The fate of one remote message under a plan, resolved deterministically
/// from (plan.seed, edge slot): total extra latency accumulated by lost
/// attempts, the number of retransmissions, whether the transfer itself is
/// slowed by delay_factor, and whether the message was dropped for good
/// after the retry budget ran out.
struct MessageOutcome {
  Cost retry_delay = 0.0;     ///< timeout latency before the winning attempt
  std::size_t retries = 0;    ///< retransmissions performed
  bool delayed = false;       ///< transfer time multiplied by delay_factor
  bool dropped = false;       ///< true: the message never arrives
};

/// Resolve the outcome of the message travelling along the edge with global
/// slot index `edge_slot` (the CSR successor index used by the simulator).
MessageOutcome resolve_message(const FaultPlan& plan, std::size_t edge_slot);

/// The deterministic runtime-perturbation factor for task `t` (1.0 when the
/// plan has runtime_spread == 0).
Cost runtime_factor(const FaultPlan& plan, TaskId t);

}  // namespace flb
