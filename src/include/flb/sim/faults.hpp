#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "flb/util/types.hpp"

/// \file faults.hpp
/// Deterministic fault injection for the machine simulator.
///
/// The paper's machine (Section 2) is perfectly reliable: processors never
/// fail, messages always arrive, and runtimes equal their compile-time
/// estimates. A FaultPlan relaxes all of these assumptions at once:
///
///  * **Fail-stop processor failures.** A processor listed in `failures`
///    dies at its failure time: the task it is executing is killed (its
///    unprotected work is lost), unstarted tasks on it never run, and it
///    stays dead for the rest of the simulation — unless a matching entry
///    in `rejoins` reboots it. Messages emitted by tasks that *finished*
///    before the failure are considered in flight and still delivered.
///  * **Recovery.** A processor listed in `rejoins` reboots: from the
///    rejoin instant on it dispatches its remaining scheduled tasks again,
///    but with *cold caches* — its in-flight work and every message
///    delivered to it before (or while) it was down are lost, so inputs
///    that predate the reboot are re-fetched from the durable store at
///    full communication cost. Only durably checkpointed state survives
///    (see `checkpoint`). Kill/rejoin pairs form disjoint windows; a
///    processor may die and rejoin repeatedly. Likewise a slowdown with a
///    finite `until` restores the processor's speed at that instant, and a
///    burst with `recovery_delay > 0` heals each member (reboot after a
///    kill, speed restored after a throttle) that long after its strike.
///  * **Failure domains and correlated bursts.** Real clusters rarely fail
///    one machine at a time: a rack loses power, a switch partitions, and
///    its members fail together. `domains` names groups of processors;
///    `bursts` trigger correlated episodes on a domain — each member
///    participates with `probability` and fails within `[time, time +
///    window]`, and the burst may cascade to further domains. A burst with
///    `slowdown_factor` in (0, 1] throttles its members instead of killing
///    them.
///  * **Partial partitions.** A link listed in `partitions` goes dark for
///    a window: both endpoints stay alive, but messages crossing the link
///    at their send instant reroute around the cut (when a live path
///    exists) or are dropped (when the endpoints are disconnected), and an
///    observer behind the cut stops hearing the far side's heartbeats —
///    the network lies to part of the cluster.
///  * **Slowdown faults.** A processor listed in `slowdowns` does not die;
///    its speed is multiplied by `factor` from `time` on (thermal
///    throttling, co-tenancy). Multiple slowdowns of one processor
///    compound multiplicatively. Communication is unaffected.
///  * **Periodic checkpointing.** With `checkpoint.interval > 0` every task
///    writes a durable checkpoint after each `interval` units of work
///    (costing `checkpoint.overhead` wall time per write); a killed task
///    loses only the work past its last durable checkpoint, and
///    repair_schedule() resumes it from there instead of from zero. With
///    `checkpoint.min_downstream > 0` the policy is criticality-aware:
///    only tasks whose bottom level reaches the threshold checkpoint at
///    all — see CheckpointPolicy.
///  * **Message loss with bounded retry.** Every remote transfer attempt is
///    lost independently with `loss_probability`; a lost attempt is
///    retransmitted after a timeout that grows by `backoff` per retry, up
///    to `max_retries` retransmissions. A message whose final attempt is
///    also lost is dropped permanently — its consumer (and everything
///    behind it in that processor's dispatch order) never runs.
///  * **Message delay.** Independently of loss, a message is delayed with
///    `delay_probability`, multiplying its transfer time by `delay_factor`.
///  * **Runtime perturbation.** Each task's computation cost is scaled by a
///    factor drawn uniformly from [1 - runtime_spread, 1 + runtime_spread],
///    modelling compile-time estimates that drift at runtime.
///
/// All randomness is derived from `seed` plus the task id / edge slot /
/// (burst, member) pair being perturbed, never from event order, so a plan
/// yields bit-identical outcomes across runs, network models and repair
/// strategies. resolve_faults() expands domains and bursts into the
/// concrete per-processor failure/slowdown lists the simulator executes.

namespace flb {

/// One fail-stop processor failure.
struct ProcFailure {
  ProcId proc = kInvalidProc;
  Cost time = 0.0;  ///< the processor is dead from this instant on
};

/// One recovery event: a previously killed processor finishes rebooting and
/// is available again from `time` on, with cold caches — everything it held
/// in memory (in-flight work, already-delivered messages) is gone; durable
/// checkpoints survive. Must pair with a preceding ProcFailure of the same
/// processor; kill/rejoin windows of one processor must not overlap.
struct ProcRejoin {
  ProcId proc = kInvalidProc;
  Cost time = 0.0;  ///< the processor is available again from this instant
};

/// One slowdown fault: the processor stays alive, but from `time` on its
/// speed is multiplied by `factor` (so a task's remaining work proceeds at
/// the reduced rate). Several slowdowns of one processor compound. A finite
/// `until` makes the throttling transient: the factor is lifted again at
/// that instant (thermal throttling that clears, a co-tenant that leaves).
struct SlowdownFault {
  ProcId proc = kInvalidProc;
  Cost time = 0.0;      ///< throttling starts at this instant
  double factor = 1.0;  ///< speed multiplier in (0, 1]
  Cost until = kInfiniteTime;  ///< speed restored here; infinite = permanent
};

/// A named group of processors that fails together (a rack, a switch, a
/// power domain). Domains may overlap; membership order is significant only
/// for the deterministic per-member randomness of bursts.
struct FailureDomain {
  std::string name;
  std::vector<ProcId> members;
};

/// One correlated failure episode on a domain. Each member participates
/// independently with `probability`; a participating member fails (or, with
/// `slowdown_factor` in (0, 1], throttles) at a deterministic instant drawn
/// uniformly from [time, time + window]. With `cascade_probability > 0` the
/// burst spreads: every *other* declared domain is hit by a secondary burst
/// (same window, probability and slowdown_factor, no further cascading)
/// triggered at `time + window + cascade_delay`, independently with
/// `cascade_probability` — seeded, bounded cascading along the domain list.
struct DomainBurst {
  std::string domain;             ///< must name a declared FailureDomain
  Cost time = 0.0;                ///< burst trigger instant
  Cost window = 0.0;              ///< member faults spread over [time, time+window]
  double probability = 1.0;       ///< per-member participation probability
  double slowdown_factor = 0.0;   ///< 0 = fail-stop kill; (0,1] = throttle
  double cascade_probability = 0.0;  ///< per-other-domain spread probability
  Cost cascade_delay = 0.0;       ///< secondary bursts trigger after the window
  /// With recovery_delay > 0 the episode is transient: each struck member
  /// heals that long after its (seeded) strike instant — a killed member
  /// reboots (cold caches), a throttled one gets its speed back. 0 keeps
  /// the PR 2 semantics: the damage is permanent.
  Cost recovery_delay = 0.0;
};

/// Periodic checkpointing policy. Disabled by default (interval 0): a
/// killed task restarts from zero. With interval T > 0, a task writes a
/// durable checkpoint after each T units of *work* (marks at T, 2T, ...
/// strictly below its total work), pausing for `overhead` wall time per
/// write; a checkpoint interrupted by a failure is not durable.
///
/// Criticality-aware placement: with `min_downstream > 0` only tasks whose
/// downstream cost — the bottom level BL(t), the heaviest
/// computation+communication path from t to an exit — reaches the
/// threshold are checkpointed; the rest run unprotected. Losing a task
/// with little work behind it is cheap to absorb, so spending writes on it
/// buys almost nothing; the threshold concentrates the overhead budget on
/// the tasks whose loss would stall the longest chains. 0 keeps the
/// uniform policy: every task checkpoints.
struct CheckpointPolicy {
  Cost interval = 0.0;  ///< work units between checkpoints; 0 disables
  Cost overhead = 0.0;  ///< wall time per durable checkpoint write
  /// Checkpoint only tasks with bottom level >= this (0 = all tasks).
  Cost min_downstream = 0.0;

  [[nodiscard]] bool enabled() const { return interval > 0.0; }

  /// True iff a task with downstream cost (bottom level) `downstream` is
  /// checkpointed under this policy.
  [[nodiscard]] bool covers(Cost downstream) const {
    return enabled() && downstream >= min_downstream;
  }
};

/// One partial-partition window: the link between the two endpoints is
/// unreachable for [time, until). Both processors stay alive and keep
/// computing — only messages that would cross the partitioned link at
/// their send instant are affected (rerouted around the cut when a live
/// path exists, dropped when the endpoints are fully disconnected), and
/// heartbeats crossing the cut never arrive, so an observer behind the
/// partition forms beliefs that disagree with the rest of the cluster.
/// An endpoint is either a single processor (`proc_*`, used when the
/// corresponding `domain_*` is empty) or a named failure domain (every
/// member pair across the two sides partitions). A finite `until` heals
/// the link at that instant; kInfiniteTime never heals.
struct PartitionFault {
  ProcId proc_a = kInvalidProc;  ///< endpoint A when domain_a is empty
  ProcId proc_b = kInvalidProc;  ///< endpoint B when domain_b is empty
  std::string domain_a;          ///< non-empty: endpoint A is this domain
  std::string domain_b;          ///< non-empty: endpoint B is this domain
  Cost time = 0.0;               ///< the link goes dark at this instant
  Cost until = kInfiniteTime;    ///< heal instant; infinite = never heals
};

/// Heartbeat-based failure *sensing* (runtime/failure_detector.hpp). Unlike
/// every other section of a FaultPlan this injects nothing into the
/// simulated execution — it configures how an unreliable observer perceives
/// it. Every processor emits a heartbeat each `period` units of wall time
/// while it is alive; each emission is independently lost with
/// `loss_probability` or delayed by `delay_factor * period` with
/// `delay_probability` (seeded per (processor, beat index), like message
/// faults). A φ-accrual-style monitor suspects a processor once it has
/// been silent for `suspect_after` periods and confirms it dead after
/// `confirm_after`; any later heartbeat exonerates it. False positives
/// (lossy silence from a live processor) and false negatives (a death
/// missed because the processor rejoins within the suspicion window) are
/// both possible by construction.
struct HeartbeatConfig {
  Cost period = 0.0;               ///< emission period; 0 disables sensing
  double loss_probability = 0.0;   ///< per heartbeat, i.i.d., seeded
  double delay_probability = 0.0;  ///< per heartbeat, i.i.d., seeded
  double delay_factor = 1.5;       ///< delayed arrival = emission + factor*period
  double suspect_after = 2.0;      ///< accrual threshold (periods) to suspect
  double confirm_after = 4.0;      ///< accrual threshold (periods) to confirm

  [[nodiscard]] bool enabled() const { return period > 0.0; }
};

/// Per-message loss/delay model with bounded retry.
struct MessageFaults {
  double loss_probability = 0.0;   ///< per transmission attempt
  double delay_probability = 0.0;  ///< per message (applied once)
  double delay_factor = 2.0;       ///< transfer-time multiplier when delayed
  std::size_t max_retries = 3;     ///< retransmissions after the first attempt
  Cost retry_timeout = 1.0;        ///< wait before the first retransmission
  double backoff = 2.0;            ///< timeout multiplier per further retry
};

/// A complete, seeded description of everything that goes wrong during one
/// simulated execution. Default-constructed plans inject no faults.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<ProcFailure> failures;
  std::vector<ProcRejoin> rejoins;
  std::vector<SlowdownFault> slowdowns;
  std::vector<FailureDomain> domains;
  std::vector<DomainBurst> bursts;
  std::vector<PartitionFault> partitions;
  CheckpointPolicy checkpoint;
  MessageFaults message;
  HeartbeatConfig heartbeat;
  double runtime_spread = 0.0;  ///< comp scaled by uniform [1-s, 1+s], s < 1

  /// Convenience: a plan whose only fault is killing `proc` at `time`.
  [[nodiscard]] static FaultPlan single_failure(ProcId proc, Cost time);

  /// True iff the plan injects nothing (the simulator takes the fast path).
  [[nodiscard]] bool trivial() const;

  /// The instant `p` dies according to the *directly listed* failures, or
  /// kInfiniteTime. Burst-induced deaths are not included — use
  /// resolve_faults() / ResolvedFaults::death_time for the full picture.
  [[nodiscard]] Cost death_time(ProcId p) const;

  /// Point-of-use validation. Throws flb::Error naming the offending entry
  /// unless: probabilities are in [0,1]; runtime_spread in [0,1);
  /// retry_timeout > 0; backoff >= 1; every failure names a processor below
  /// `num_procs` with a finite, non-negative time; every rejoin references
  /// a processor with a preceding failure, strictly after it, and no two
  /// kill/rejoin windows of one processor overlap (a repeated failure of a
  /// still-dead processor is rejected as a duplicate); every slowdown
  /// names a processor below `num_procs` with a finite, non-negative time,
  /// a factor in (0,1] and an `until` strictly after its onset; domain
  /// names are unique and non-empty with members below `num_procs`; every
  /// burst references a declared domain with finite, non-negative
  /// time/window/cascade_delay/recovery_delay and a slowdown_factor of 0
  /// or in (0,1]; checkpoint interval, overhead and min_downstream are
  /// finite and non-negative; every partition has distinct endpoints
  /// (no self-partition), processor endpoints below `num_procs`, domain
  /// endpoints naming declared domains, a finite non-negative onset and a
  /// heal instant strictly after it (or infinite); and the heartbeat
  /// section has a finite, non-negative period, probabilities in [0,1], a
  /// finite delay_factor >= 1, and finite accrual thresholds with
  /// 0 < suspect_after < confirm_after.
  void validate(ProcId num_procs) const;
};

/// The concrete fault set a plan expands to: directly listed failures,
/// rejoins and slowdowns plus every burst-induced one, resolved
/// deterministically from the seed. Per processor the kill/rejoin events
/// are canonicalized into alternating disjoint windows (a kill while
/// already dead is dropped, as is a rejoin while alive — relevant when a
/// burst strikes a processor that also has explicit windows); all lists are
/// sorted by (time, proc).
struct ResolvedFaults {
  std::vector<ProcFailure> failures;
  std::vector<ProcRejoin> rejoins;
  std::vector<SlowdownFault> slowdowns;

  /// The instant `p` first dies, or kInfiniteTime if nothing kills it.
  [[nodiscard]] Cost death_time(ProcId p) const;

  /// The instant from which `p` is available for new work with no further
  /// death ahead: 0 if it is never killed, its last rejoin instant if it
  /// ends the episode alive, kInfiniteTime if it ends dead. Data produced
  /// on `p` before a positive available_from() is cold (lost to the
  /// reboot) and must be re-fetched at full communication cost.
  [[nodiscard]] Cost available_from(ProcId p) const;

  /// Total dead time of `p` within [0, horizon]: the summed kill/rejoin
  /// windows, final deaths extending to the horizon.
  [[nodiscard]] Cost downtime(ProcId p, Cost horizon) const;
};

/// Expand domains and bursts into the concrete failure/slowdown lists.
/// Pure function of the plan (call validate() first); bit-identical across
/// runs and network models.
ResolvedFaults resolve_faults(const FaultPlan& plan);

/// One resolved per-link unreachability window: the direct link between
/// processors `a` and `b` (canonical: a < b) is down for [time, until).
struct LinkOutage {
  ProcId a = kInvalidProc;
  ProcId b = kInvalidProc;
  Cost time = 0.0;
  Cost until = kInfiniteTime;
};

/// Expand the plan's partition directives into canonical per-link outage
/// windows: domain endpoints expand to every cross-pair of members, the
/// endpoints of each pair are ordered a < b, overlapping or touching
/// windows of one link are merged into maximal disjoint windows, and the
/// result is sorted by (a, b, time) — a canonical value. Pure function of
/// the plan (call validate() first).
std::vector<LinkOutage> resolve_partitions(const FaultPlan& plan);

/// True iff the direct link x <-> y is partitioned at instant `t` under
/// the canonical outage set (windows are half-open: a link is down at its
/// onset, up again at its heal instant). A link with no outage — and any
/// self-link — is always up.
bool link_partitioned(const std::vector<LinkOutage>& outages, ProcId x,
                      ProcId y, Cost t);

/// True iff a multi-hop path of unpartitioned direct links connects x and
/// y at instant `t`, routing through any of the `num_procs` processors
/// (breadth-first over the complement of the partitioned link set). With
/// no outages every pair is path-connected; a fully cut-off processor is
/// path-connected to nothing but itself.
bool path_connected(const std::vector<LinkOutage>& outages, ProcId num_procs,
                    ProcId x, ProcId y, Cost t);

/// Hop count of the shortest path of unpartitioned direct links from x to
/// y at instant `t` (1 when the direct link is up, 0 for x == y), or 0
/// when no path exists. The simulator prices a rerouted message at this
/// multiple of its nominal transfer cost.
std::size_t reroute_hops(const std::vector<LinkOutage>& outages,
                         ProcId num_procs, ProcId x, ProcId y, Cost t);

/// The asymptotic speed of every processor once all slowdowns in
/// `resolved` have struck *and every transient one has cleared*: the
/// per-processor product of the factors of permanent slowdowns (a finite
/// `until` contributes nothing — the speed comes back). 1.0 for untouched
/// processors. Bridges the fault model into the related-machines view of
/// sched/hetero for speed-aware repair.
std::vector<double> final_speeds(const ResolvedFaults& resolved,
                                 ProcId num_procs);

/// Number of durable checkpoints a task with `work` units of computation
/// writes during a full execution: marks at interval, 2*interval, ...
/// strictly below `work`. Zero when checkpointing is disabled.
std::size_t checkpoint_count(const CheckpointPolicy& ckpt, Cost work);

/// The fate of one remote message under a plan, resolved deterministically
/// from (plan.seed, edge slot): total extra latency accumulated by lost
/// attempts, the number of retransmissions, whether the transfer itself is
/// slowed by delay_factor, and whether the message was dropped for good
/// after the retry budget ran out.
struct MessageOutcome {
  Cost retry_delay = 0.0;     ///< timeout latency before the winning attempt
  std::size_t retries = 0;    ///< retransmissions performed
  bool delayed = false;       ///< transfer time multiplied by delay_factor
  bool dropped = false;       ///< true: the message never arrives
};

/// Resolve the outcome of the message travelling along the edge with global
/// slot index `edge_slot` (the CSR successor index used by the simulator).
MessageOutcome resolve_message(const FaultPlan& plan, std::size_t edge_slot);

/// The deterministic runtime-perturbation factor for task `t` (1.0 when the
/// plan has runtime_spread == 0).
Cost runtime_factor(const FaultPlan& plan, TaskId t);

// --- Text serialization -----------------------------------------------------
//
// Line-oriented round-trippable plan format, so fault scenarios can be
// saved, diffed and replayed (and fuzzed — fuzz/fuzz_fault_plan.cpp):
//
//     flb-faultplan 1
//     seed 42
//     runtime-spread 0.1
//     checkpoint <interval> <overhead> [min_downstream]   (defaults to 0)
//     message <loss> <delay_prob> <delay_factor> <max_retries> <timeout> <backoff>
//     heartbeat <period> <loss> <delay_prob> <delay_factor> <suspect> <confirm>
//     fail <proc> <time>
//     rejoin <proc> <time>
//     slowdown <proc> <time> <factor> [until]      (until defaults to inf)
//     domain <name> <member> [member...]
//     burst <domain> <time> <window> [prob] [slowdown] [cascade_prob]
//           [cascade_delay] [recovery_delay]       (defaults 1 0 0 0 0)
//     partition <a> <b> <time> [until]             (until defaults to inf)
//
// A partition endpoint is a processor id (digits) or a declared domain
// name; the two endpoints must differ and `until`, when finite, must be
// strictly after `time` — both are rejected at parse time.
//
// '#' comment lines and blank lines are allowed; directives may repeat
// (fail/rejoin/slowdown/domain/burst append, the scalar ones overwrite).

/// Parse the text format. Throws flb::Error naming the offending line on
/// malformed input (unknown directive, missing or non-finite fields). The
/// parser checks syntax and local field sanity only; call
/// FaultPlan::validate(num_procs) afterwards for the semantic rules.
FaultPlan read_fault_plan(std::istream& is);

/// Convenience: parse a plan from a string.
FaultPlan fault_plan_from_text(const std::string& text);

/// Write `plan` in the text format above (round-trips through
/// read_fault_plan).
void write_fault_plan(std::ostream& os, const FaultPlan& plan);

/// Convenience: serialize a plan to a string.
std::string to_fault_plan_text(const FaultPlan& plan);

}  // namespace flb
