#pragma once

#include <cstddef>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sim/faults.hpp"

/// \file machine_sim.hpp
/// Discrete-event simulation of a distributed-memory machine *executing* a
/// compile-time schedule.
///
/// The paper evaluates schedules purely analytically under the clique,
/// contention-free model of Section 2. This simulator closes the loop: it
/// dispatches each processor's tasks in schedule order, delivers messages
/// as events, and reports when everything actually ran.
///
///  * Under SimNetwork::kContentionFree the simulation provably reproduces
///    the analytic schedule built by any scheduler in this library
///    (asserted by the property tests) — an end-to-end cross-validation of
///    schedulers, Schedule bookkeeping and validator alike.
///  * The port-constrained models relax the paper's "communication is
///    performed without contention" assumption (Section 2) and quantify
///    how much of each algorithm's advantage survives when messages
///    serialize at the NICs — the bench_sim_contention ablation.
///  * A seeded FaultPlan (faults.hpp) additionally relaxes *reliability*:
///    fail-stop processor deaths (independent or in correlated domain
///    bursts), slowdown faults that throttle a processor's speed,
///    periodic checkpointing, message loss/delay with bounded retry and
///    exponential backoff, and runtime perturbation. Partial executions it
///    produces feed the online repair path (sched/repair.hpp) — the
///    bench_fault_tolerance ablation.
///  * Recovery events close the loop on transience: a slowdown with a
///    finite `until` restores the processor's speed at that instant, and a
///    ProcRejoin brings a killed processor back with cold caches. On
///    rejoin the processor resumes dispatching its not-yet-started tasks;
///    work that was in flight at the kill stays lost (repair's job), and
///    any input data that reached the processor before the reboot — local
///    predecessor outputs and already-delivered messages alike — must be
///    re-fetched, priced at rejoin_time + comm * latency_factor on the
///    consumer's start (not accounted as network traffic).
///  * SimOptions::event_log turns the simulator into an *observable*
///    machine: every fault and recovery is also emitted as a timestamped
///    SimEvent, the input of the online recovery controller
///    (runtime/recovery_runtime.hpp) which repairs with no knowledge of
///    the plan beyond what the stream has surfaced so far.
///
/// Dispatch discipline: each processor runs its tasks in the order the
/// schedule placed them, each task starting as soon as the processor is
/// free and its messages have arrived (schedule times are *not* replayed;
/// they re-emerge in the contention-free model). Message ports are
/// allocated in global event-time order, which makes all three models
/// deterministic.
///
/// Slowdown faults give each processor a piecewise-constant speed profile:
/// the speed at any instant is the product of the factors of all slowdowns
/// active then (a fault is active on [time, until)). Segment speeds are
/// recomputed from scratch at each boundary, so a fully recovered
/// processor returns to exactly 1.0 — no accumulated 1/factor drift. A
/// task's finish time integrates its remaining work through that profile.
/// Checkpoint writes pause the computation for the policy's overhead; a
/// fail-stop kill preserves the work up to the last checkpoint whose write
/// completed (SimResult::checkpointed), and only the unprotected remainder
/// counts as work_lost.

namespace flb {

/// Network contention model.
enum class SimNetwork {
  kContentionFree,    ///< the paper's model: all transfers in parallel
  kSinglePortSend,    ///< one outgoing transfer at a time per processor
  kSinglePortSendRecv ///< additionally one incoming transfer at a time
};

/// What an observer of the executing machine would see happen — the event
/// stream a fault-injected simulation emits into SimOptions::event_log.
/// This is the *online* face of the fault model: each entry carries only
/// information available at its timestamp, so a controller consuming the
/// stream in time order (flb::runtime) learns about faults exactly when a
/// real runtime would, never from the FaultPlan it cannot see.
enum class SimEventKind {
  kFailure = 0,        ///< a processor died (fail-stop)
  kRejoin = 1,         ///< a killed processor finished rebooting (cold)
  kSlowdownBegin = 2,  ///< a slowdown struck; `value` is the speed factor
  kSlowdownEnd = 3,    ///< a transient slowdown cleared (factor lifted)
  /// A dispatched task was lost with its processor; `value` is the durably
  /// checkpointed work.
  kTaskKilled = 4,
  /// A message exhausted its retry budget; task -> task2 will never be
  /// delivered.
  kMessageDropped = 5,
  /// The link proc ~ proc2 went dark (both ends stay alive but cannot talk
  /// directly).
  kLinkPartitioned = 6,
  kLinkHealed = 7,  ///< a partitioned link came back
};

/// One observed event. Machine-level events (failure, rejoin, slowdown
/// begin/end) leave task fields at kInvalidTask; kTaskKilled names the lost
/// task, kMessageDropped the producer (`task`) and starved consumer
/// (`task2`). `time` for a dropped message is the instant the *sender*
/// learns the transfer is lost — the emission instant plus the exhausted
/// retry timeouts — not the instant of the first attempt. The link events
/// (kLinkPartitioned, kLinkHealed) name the two endpoints in `proc` and
/// `proc2` (canonical: proc < proc2).
struct SimEvent {
  Cost time = 0.0;
  SimEventKind kind = SimEventKind::kFailure;
  ProcId proc = kInvalidProc;
  TaskId task = kInvalidTask;
  TaskId task2 = kInvalidTask;
  double value = 0.0;  ///< slowdown factor / checkpointed work, else 0
  ProcId proc2 = kInvalidProc;  ///< far endpoint of a link event

  /// Identity key and deterministic log order: (time, kind, proc, tasks).
  [[nodiscard]] auto key() const {
    return std::make_tuple(time, static_cast<int>(kind), proc, task, task2,
                           proc2);
  }
  bool operator<(const SimEvent& other) const { return key() < other.key(); }
  bool operator==(const SimEvent& other) const {
    return key() == other.key() && value == other.value;
  }
};

/// Render one event as a stable, diffable log line, e.g.
/// "t=12.5 failure p2" or "t=20 message-dropped p1 t7->t9".
std::string to_string(const SimEvent& event);

/// Simulation options.
struct SimOptions {
  SimNetwork network = SimNetwork::kContentionFree;
  /// Multiplies every communication cost (1.0 = the graph's costs). Allows
  /// what-if sweeps without regenerating graphs.
  Cost latency_factor = 1.0;
  /// Optional fault injection (see faults.hpp). Not owned; must outlive the
  /// simulate() call. With a non-trivial plan the execution may be partial:
  /// check SimResult::complete() before trusting the makespan, or hand the
  /// result to repair_schedule() to build a continuation.
  const FaultPlan* faults = nullptr;
  /// Optional per-task effective-work override (not owned). Entries other
  /// than kUndefinedTime replace the task's computation *including* any
  /// runtime perturbation — used to replay a repaired continuation whose
  /// migrated tasks resume from a checkpoint with only their remaining
  /// work. Must have num_tasks entries when set.
  const std::vector<Cost>* work_override = nullptr;
  /// Optional per-task checkpoint-interval override (not owned). Entries
  /// other than kUndefinedTime replace CheckpointPolicy::interval for that
  /// task; the policy's overhead and min_downstream gating are unchanged,
  /// and an entry of 0 disables the task's checkpoints. Used by the
  /// adaptive-checkpointing controller (flb::runtime), which re-derives
  /// the interval from its online failure-rate estimate and installs it
  /// for the tasks each repair re-plans. Must have num_tasks entries with
  /// finite, non-negative values (or kUndefinedTime) when set; ignored
  /// without a fault plan.
  const std::vector<Cost>* checkpoint_interval = nullptr;
  /// Optional observer stream (not owned). When set and a fault plan is
  /// active, the simulation appends every observable event — failures,
  /// rejoins, slowdown onsets and recoveries, task kills, permanent message
  /// drops — sorted by SimEvent::key(), so two runs of the same plan yield
  /// byte-identical logs. The vector is cleared first. Without a plan the
  /// log is just cleared (a fault-free run has nothing to observe).
  std::vector<SimEvent>* event_log = nullptr;
  /// Treat the schedule's start times as *earliest-start constraints*
  /// instead of replaying as-soon-as-possible: no task starts before its
  /// ST(t), and a task that had not yet started when its processor died is
  /// returned to the queue (nothing of it is lost) and re-dispatched if the
  /// processor rejoins, rather than counted as killed. This is the causal
  /// execution mode for *continuation* schedules (sched/repair.hpp), whose
  /// start times encode repair release instants and rejoin admissions —
  /// without it a replay would start migrated work before the failure it
  /// reacts to was even observable, and would kill given-back tasks that
  /// are scheduled after their processor's reboot. Default off: plain
  /// replays keep the dispatch-ASAP semantics.
  bool honor_start_times = false;
};

/// Simulation outcome. With fault injection, tasks that never ran keep
/// start/finish == kUndefinedTime and are listed in `unfinished`.
struct SimResult {
  std::vector<Cost> start;   ///< actual start per task
  std::vector<Cost> finish;  ///< actual finish per task
  Cost makespan = 0.0;       ///< latest finish among completed tasks
  std::size_t messages = 0;  ///< remote messages delivered
  Cost network_busy = 0.0;   ///< summed transfer time (scaled costs)

  // Fault accounting (all zero / empty without a fault plan).
  std::size_t retries = 0;           ///< message retransmissions performed
  std::size_t dropped_messages = 0;  ///< messages lost beyond the retry budget
  std::size_t rejoins = 0;     ///< processor rejoin events applied
  Cost work_lost = 0.0;        ///< unprotected computation discarded by kills
  /// Summed per-processor kill/rejoin downtime clamped to the makespan; for
  /// a processor that never rejoins this is (makespan - death time) as
  /// before.
  Cost dead_proc_idle = 0.0;
  std::vector<TaskId> unfinished;  ///< tasks that never completed, ascending
  /// (producer, consumer) pairs of permanently dropped messages, in
  /// delivery-attempt order — the input of re-execution repair.
  std::vector<std::pair<TaskId, TaskId>> dropped_edges;

  // Checkpoint accounting (zero / empty unless the plan checkpoints).
  Cost work_saved = 0.0;            ///< checkpointed work preserved by kills
  Cost checkpoint_overhead = 0.0;   ///< wall time spent on durable writes
  std::size_t checkpoints_taken = 0;  ///< durable checkpoint writes
  /// Per-task work protected by the last durable checkpoint of a *killed*
  /// task (0 elsewhere); sized num_tasks under a fault plan, else empty.
  std::vector<Cost> checkpointed;

  /// Per-processor unprotected work lost to kills on that processor;
  /// sized num_procs under a fault plan, else empty. Feeds the per-domain
  /// degradation accounting of robustness_metrics().
  std::vector<Cost> proc_work_lost;

  // Partial-partition accounting (zero unless the plan partitions links).
  /// Messages whose direct link was partitioned at their send instant but
  /// that still arrived — rerouted over a multi-hop detour of live links,
  /// or (when the endpoints were momentarily disconnected) held back until
  /// the earliest heal instant restored a path.
  std::size_t rerouted_messages = 0;
  /// Extra wall latency those messages paid: detour hops beyond the first
  /// plus any wait for a heal. Priced through the same cost model as the
  /// nominal transfer.
  Cost reroute_extra = 0.0;
  /// Messages dropped because their endpoints are partitioned with no live
  /// path and no future heal — included in dropped_messages/dropped_edges,
  /// so re-execution repair treats them like exhausted retries.
  std::size_t partition_dropped = 0;

  /// True iff every task ran to completion.
  [[nodiscard]] bool complete() const { return unfinished.empty(); }
};

/// Execute `s` (a complete schedule of `g`) on the simulated machine.
/// Throws flb::Error if the schedule is incomplete or — absent fault
/// injection — its dispatch order deadlocks (impossible for schedules
/// accepted by validate_schedule). With a fault plan, starvation is a
/// legitimate outcome and is reported through SimResult::unfinished
/// instead of an exception.
SimResult simulate(const TaskGraph& g, const Schedule& s,
                   const SimOptions& options = {});

}  // namespace flb
