#pragma once

#include <cstddef>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"

/// \file machine_sim.hpp
/// Discrete-event simulation of a distributed-memory machine *executing* a
/// compile-time schedule.
///
/// The paper evaluates schedules purely analytically under the clique,
/// contention-free model of Section 2. This simulator closes the loop: it
/// dispatches each processor's tasks in schedule order, delivers messages
/// as events, and reports when everything actually ran.
///
///  * Under SimNetwork::kContentionFree the simulation provably reproduces
///    the analytic schedule built by any scheduler in this library
///    (asserted by the property tests) — an end-to-end cross-validation of
///    schedulers, Schedule bookkeeping and validator alike.
///  * The port-constrained models relax the paper's "communication is
///    performed without contention" assumption (Section 2) and quantify
///    how much of each algorithm's advantage survives when messages
///    serialize at the NICs — the bench_sim_contention ablation.
///
/// Dispatch discipline: each processor runs its tasks in the order the
/// schedule placed them, each task starting as soon as the processor is
/// free and its messages have arrived (schedule times are *not* replayed;
/// they re-emerge in the contention-free model). Message ports are
/// allocated in global event-time order, which makes all three models
/// deterministic.

namespace flb {

/// Network contention model.
enum class SimNetwork {
  kContentionFree,    ///< the paper's model: all transfers in parallel
  kSinglePortSend,    ///< one outgoing transfer at a time per processor
  kSinglePortSendRecv ///< additionally one incoming transfer at a time
};

/// Simulation options.
struct SimOptions {
  SimNetwork network = SimNetwork::kContentionFree;
  /// Multiplies every communication cost (1.0 = the graph's costs). Allows
  /// what-if sweeps without regenerating graphs.
  Cost latency_factor = 1.0;
};

/// Simulation outcome.
struct SimResult {
  std::vector<Cost> start;   ///< actual start per task
  std::vector<Cost> finish;  ///< actual finish per task
  Cost makespan = 0.0;       ///< latest finish
  std::size_t messages = 0;  ///< remote messages delivered
  Cost network_busy = 0.0;   ///< summed transfer time (scaled costs)
};

/// Execute `s` (a complete schedule of `g`) on the simulated machine.
/// Throws flb::Error if the schedule is incomplete or its dispatch order
/// deadlocks (impossible for schedules accepted by validate_schedule).
SimResult simulate(const TaskGraph& g, const Schedule& s,
                   const SimOptions& options = {});

}  // namespace flb
