#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sim/faults.hpp"

/// \file machine_sim.hpp
/// Discrete-event simulation of a distributed-memory machine *executing* a
/// compile-time schedule.
///
/// The paper evaluates schedules purely analytically under the clique,
/// contention-free model of Section 2. This simulator closes the loop: it
/// dispatches each processor's tasks in schedule order, delivers messages
/// as events, and reports when everything actually ran.
///
///  * Under SimNetwork::kContentionFree the simulation provably reproduces
///    the analytic schedule built by any scheduler in this library
///    (asserted by the property tests) — an end-to-end cross-validation of
///    schedulers, Schedule bookkeeping and validator alike.
///  * The port-constrained models relax the paper's "communication is
///    performed without contention" assumption (Section 2) and quantify
///    how much of each algorithm's advantage survives when messages
///    serialize at the NICs — the bench_sim_contention ablation.
///  * A seeded FaultPlan (faults.hpp) additionally relaxes *reliability*:
///    fail-stop processor deaths (independent or in correlated domain
///    bursts), slowdown faults that throttle a processor's speed,
///    periodic checkpointing, message loss/delay with bounded retry and
///    exponential backoff, and runtime perturbation. Partial executions it
///    produces feed the online repair path (sched/repair.hpp) — the
///    bench_fault_tolerance ablation.
///  * Recovery events close the loop on transience: a slowdown with a
///    finite `until` restores the processor's speed at that instant, and a
///    ProcRejoin brings a killed processor back with cold caches. On
///    rejoin the processor resumes dispatching its not-yet-started tasks;
///    work that was in flight at the kill stays lost (repair's job), and
///    any input data that reached the processor before the reboot — local
///    predecessor outputs and already-delivered messages alike — must be
///    re-fetched, priced at rejoin_time + comm * latency_factor on the
///    consumer's start (not accounted as network traffic).
///
/// Dispatch discipline: each processor runs its tasks in the order the
/// schedule placed them, each task starting as soon as the processor is
/// free and its messages have arrived (schedule times are *not* replayed;
/// they re-emerge in the contention-free model). Message ports are
/// allocated in global event-time order, which makes all three models
/// deterministic.
///
/// Slowdown faults give each processor a piecewise-constant speed profile:
/// the speed at any instant is the product of the factors of all slowdowns
/// active then (a fault is active on [time, until)). Segment speeds are
/// recomputed from scratch at each boundary, so a fully recovered
/// processor returns to exactly 1.0 — no accumulated 1/factor drift. A
/// task's finish time integrates its remaining work through that profile.
/// Checkpoint writes pause the computation for the policy's overhead; a
/// fail-stop kill preserves the work up to the last checkpoint whose write
/// completed (SimResult::checkpointed), and only the unprotected remainder
/// counts as work_lost.

namespace flb {

/// Network contention model.
enum class SimNetwork {
  kContentionFree,    ///< the paper's model: all transfers in parallel
  kSinglePortSend,    ///< one outgoing transfer at a time per processor
  kSinglePortSendRecv ///< additionally one incoming transfer at a time
};

/// Simulation options.
struct SimOptions {
  SimNetwork network = SimNetwork::kContentionFree;
  /// Multiplies every communication cost (1.0 = the graph's costs). Allows
  /// what-if sweeps without regenerating graphs.
  Cost latency_factor = 1.0;
  /// Optional fault injection (see faults.hpp). Not owned; must outlive the
  /// simulate() call. With a non-trivial plan the execution may be partial:
  /// check SimResult::complete() before trusting the makespan, or hand the
  /// result to repair_schedule() to build a continuation.
  const FaultPlan* faults = nullptr;
  /// Optional per-task effective-work override (not owned). Entries other
  /// than kUndefinedTime replace the task's computation *including* any
  /// runtime perturbation — used to replay a repaired continuation whose
  /// migrated tasks resume from a checkpoint with only their remaining
  /// work. Must have num_tasks entries when set.
  const std::vector<Cost>* work_override = nullptr;
};

/// Simulation outcome. With fault injection, tasks that never ran keep
/// start/finish == kUndefinedTime and are listed in `unfinished`.
struct SimResult {
  std::vector<Cost> start;   ///< actual start per task
  std::vector<Cost> finish;  ///< actual finish per task
  Cost makespan = 0.0;       ///< latest finish among completed tasks
  std::size_t messages = 0;  ///< remote messages delivered
  Cost network_busy = 0.0;   ///< summed transfer time (scaled costs)

  // Fault accounting (all zero / empty without a fault plan).
  std::size_t retries = 0;           ///< message retransmissions performed
  std::size_t dropped_messages = 0;  ///< messages lost beyond the retry budget
  std::size_t rejoins = 0;     ///< processor rejoin events applied
  Cost work_lost = 0.0;        ///< unprotected computation discarded by kills
  /// Summed per-processor kill/rejoin downtime clamped to the makespan; for
  /// a processor that never rejoins this is (makespan - death time) as
  /// before.
  Cost dead_proc_idle = 0.0;
  std::vector<TaskId> unfinished;  ///< tasks that never completed, ascending
  /// (producer, consumer) pairs of permanently dropped messages, in
  /// delivery-attempt order — the input of re-execution repair.
  std::vector<std::pair<TaskId, TaskId>> dropped_edges;

  // Checkpoint accounting (zero / empty unless the plan checkpoints).
  Cost work_saved = 0.0;            ///< checkpointed work preserved by kills
  Cost checkpoint_overhead = 0.0;   ///< wall time spent on durable writes
  std::size_t checkpoints_taken = 0;  ///< durable checkpoint writes
  /// Per-task work protected by the last durable checkpoint of a *killed*
  /// task (0 elsewhere); sized num_tasks under a fault plan, else empty.
  std::vector<Cost> checkpointed;

  /// Per-processor unprotected work lost to kills on that processor;
  /// sized num_procs under a fault plan, else empty. Feeds the per-domain
  /// degradation accounting of robustness_metrics().
  std::vector<Cost> proc_work_lost;

  /// True iff every task ran to completion.
  [[nodiscard]] bool complete() const { return unfinished.empty(); }
};

/// Execute `s` (a complete schedule of `g`) on the simulated machine.
/// Throws flb::Error if the schedule is incomplete or — absent fault
/// injection — its dispatch order deadlocks (impossible for schedules
/// accepted by validate_schedule). With a fault plan, starvation is a
/// legitimate outcome and is reported through SimResult::unfinished
/// instead of an exception.
SimResult simulate(const TaskGraph& g, const Schedule& s,
                   const SimOptions& options = {});

}  // namespace flb
