#include "flb/util/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "flb/util/error.hpp"

namespace flb {

namespace {

bool looks_like_option(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_option(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--flag value` if the next token is not itself an option; otherwise a
    // bare boolean flag.
    if (i + 1 < argc && !looks_like_option(argv[i + 1])) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  FLB_REQUIRE(end && *end == '\0' && !it->second.empty(),
              "--" + name + " expects an integer, got '" + it->second + "'");
  return v;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  FLB_REQUIRE(end && *end == '\0' && !it->second.empty(),
              "--" + name + " expects a number, got '" + it->second + "'");
  return v;
}

std::vector<std::int64_t> CliArgs::get_int_list(
    const std::string& name, std::vector<std::int64_t> fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    std::int64_t v = std::strtoll(item.c_str(), &end, 10);
    FLB_REQUIRE(end && *end == '\0' && !item.empty(),
                "--" + name + " expects integers, got '" + item + "'");
    out.push_back(v);
  }
  FLB_REQUIRE(!out.empty(), "--" + name + " expects a non-empty list");
  return out;
}

std::vector<double> CliArgs::get_double_list(
    const std::string& name, std::vector<double> fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    double v = std::strtod(item.c_str(), &end);
    FLB_REQUIRE(end && *end == '\0' && !item.empty(),
                "--" + name + " expects numbers, got '" + item + "'");
    out.push_back(v);
  }
  FLB_REQUIRE(!out.empty(), "--" + name + " expects a non-empty list");
  return out;
}

}  // namespace flb
