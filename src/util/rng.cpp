#include "flb/util/rng.hpp"

#include "flb/util/error.hpp"

namespace flb {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // A state of all zeros would be a fixed point; splitmix64 cannot produce
  // four consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FLB_REQUIRE(lo <= hi, "Rng::uniform: lo must not exceed hi");
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  FLB_REQUIRE(n > 0, "Rng::next_below: n must be positive");
  // Lemire-style rejection-free-in-expectation bounded draw. The 128-bit
  // multiply is a GCC/Clang extension; __extension__ keeps -Wpedantic
  // builds clean.
  __extension__ typedef unsigned __int128 u128;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next_u64();
    // Split into high/low via 128-bit multiply.
    u128 m = static_cast<u128>(r) * static_cast<u128>(n);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FLB_REQUIRE(lo <= hi, "Rng::uniform_int: lo must not exceed hi");
  std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::bernoulli(double p) {
  return next_double() < p;
}

Rng Rng::split() {
  Rng child(0);
  std::uint64_t x = next_u64();
  for (auto& s : child.s_) s = splitmix64(x);
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

Cost draw_weight(Rng& rng, Cost mean) {
  FLB_REQUIRE(mean >= 0.0, "draw_weight: mean must be non-negative");
  return rng.uniform(0.0, 2.0 * mean);
}

}  // namespace flb
