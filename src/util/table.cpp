#include "flb/util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "flb/util/error.hpp"

namespace flb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FLB_REQUIRE(!headers_.empty(), "Table: at least one column required");
}

void Table::add_row(std::vector<std::string> row) {
  FLB_REQUIRE(row.size() == headers_.size(),
              "Table::add_row: cell count must match header count");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };

  auto print_rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-");
      os << std::string(width[c], '-');
    }
    os << "-+\n";
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& s) {
    if (s.find_first_of(",\"\n") != std::string::npos) {
      os << '"';
      for (char ch : s) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << s;
    }
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      emit_cell(row[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string format_compact(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  std::string s = format_fixed(v, 4);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace flb
