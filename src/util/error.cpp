#include "flb/util/error.hpp"

#include <sstream>

namespace flb::detail {

void throw_error(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " [" << file << ":" << line << "]";
  throw Error(os.str());
}

void assert_fail(const char* file, int line, const char* expr) {
  std::ostringstream os;
  os << "internal invariant violated: " << expr << " [" << file << ":" << line
     << "]";
  throw std::logic_error(os.str());
}

}  // namespace flb::detail
