#include "flb/serve/serve.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "flb/util/error.hpp"

namespace flb::serve {

std::uint64_t schedule_digest(const Schedule& s) {
  // FNV-1a, byte-identical to the golden-digest arithmetic in
  // tests/platform_test.cpp so serving digests compare directly against
  // the pinned pre-refactor goldens.
  std::uint64_t h = 1469598103934665603ull;  // offset basis
  auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  for (TaskId t = 0; t < s.num_tasks(); ++t) {
    mix(s.proc(t));
    std::uint64_t bits = 0;
    const double start = s.start(t);
    const double finish = s.finish(t);
    std::memcpy(&bits, &start, sizeof bits);
    mix(bits);
    std::memcpy(&bits, &finish, sizeof bits);
    mix(bits);
  }
  return h;
}

namespace {

// One worker's processing of one request: schedule through the
// worker-owned scheduler into its reusable buffer, then fill the slot.
// Only `out.latency_ms` is left for the caller (it includes queueing).
void process(FlbScheduler& scheduler, Schedule& buffer, const TaskGraph& g,
             ProcId num_procs, bool keep_schedule, ScheduleResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  scheduler.run_into(g, num_procs, buffer);
  const auto t1 = std::chrono::steady_clock::now();
  out.digest = schedule_digest(buffer);
  out.makespan = buffer.makespan();
  out.run_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (keep_schedule) out.schedule = buffer;
}

}  // namespace

std::vector<ScheduleResult> schedule_batch(
    const std::vector<ScheduleRequest>& requests, const BatchOptions& opts) {
  FLB_REQUIRE(opts.num_threads >= 1,
              "schedule_batch: at least one worker thread required");
  for (const ScheduleRequest& r : requests)
    FLB_REQUIRE(r.graph != nullptr, "schedule_batch: request with null graph");

  std::vector<ScheduleResult> results(requests.size());
  if (requests.empty()) return results;

  // Workers claim requests through one atomic index and write distinct
  // result slots: no locks on the scheduling path, and the output is in
  // input order — byte-identical at any thread count.
  std::atomic<std::size_t> next{0};
  auto run_worker = [&]() {
    FlbScheduler scheduler(opts.flb);
    Schedule buffer(1, 0);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= requests.size()) break;
      process(scheduler, buffer, *requests[i].graph, requests[i].num_procs,
              opts.keep_schedules, results[i]);
      results[i].latency_ms = results[i].run_ms;  // batch: no queueing
    }
  };

  const std::size_t workers = std::min(opts.num_threads, requests.size());
  if (workers == 1) {
    run_worker();  // run on the caller's thread — the sequential baseline
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(run_worker);
  for (std::thread& t : pool) t.join();
  return results;
}

ScheduleService::ScheduleService(Options opts) : opts_(std::move(opts)) {
  FLB_REQUIRE(opts_.num_threads >= 1,
              "ScheduleService: at least one worker thread required");
  FLB_REQUIRE(opts_.queue_capacity >= 1,
              "ScheduleService: queue capacity must be at least 1");
  workers_.reserve(opts_.num_threads);
  for (std::size_t w = 0; w < opts_.num_threads; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ScheduleService::~ScheduleService() { close(); }

std::size_t ScheduleService::submit(const TaskGraph& g, ProcId num_procs) {
  std::unique_lock lock(mu_);
  FLB_REQUIRE(!closing_, "ScheduleService::submit: service is closed");
  if (queue_.size() >= opts_.queue_capacity) {
    // Backpressure: the producer is throttled to the pool's throughput
    // instead of growing an unbounded backlog.
    ++stats_.backpressure_waits;
    queue_space_.wait(
        lock, [&] { return queue_.size() < opts_.queue_capacity; });
  }
  const std::size_t id = stats_.submitted++;
  results_.emplace_back();
  queue_.push_back({&g, num_procs, id, std::chrono::steady_clock::now()});
  queue_work_.notify_one();
  return id;
}

void ScheduleService::worker_loop() {
  FlbScheduler scheduler(opts_.flb);
  Schedule buffer(1, 0);
  for (;;) {
    Pending job;
    ScheduleResult* slot = nullptr;
    {
      std::unique_lock lock(mu_);
      queue_work_.wait(lock, [&] { return closing_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closing and fully drained
      job = queue_.front();
      queue_.pop_front();
      // Deques never invalidate references on push_back, so the slot
      // pointer stays valid outside the lock while submit() grows results_.
      slot = &results_[job.id];
      queue_space_.notify_one();
    }
    process(scheduler, buffer, *job.graph, job.num_procs,
            opts_.keep_schedules, *slot);
    slot->latency_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - job.submitted)
                           .count();
    {
      std::lock_guard lock(mu_);
      ++stats_.completed;
      if (stats_.completed == stats_.submitted) all_done_.notify_all();
    }
  }
}

void ScheduleService::drain() {
  std::unique_lock lock(mu_);
  all_done_.wait(lock,
                 [&] { return stats_.completed == stats_.submitted; });
}

void ScheduleService::close() {
  {
    std::lock_guard lock(mu_);
    closing_ = true;
    queue_work_.notify_all();
  }
  // Workers drain the remaining queue before exiting, so close() implies
  // drain().
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

const ScheduleResult& ScheduleService::result(std::size_t id) const {
  std::lock_guard lock(mu_);
  FLB_REQUIRE(id < results_.size(), "ScheduleService::result: unknown id");
  return results_[id];
}

std::size_t ScheduleService::size() const {
  std::lock_guard lock(mu_);
  return stats_.submitted;
}

ServiceStats ScheduleService::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace flb::serve
