#include "flb/sim/machine_sim.hpp"

#include <algorithm>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

#include "flb/util/error.hpp"

namespace flb {

namespace {

/// Simulation event: (time, kind, sequence) so simultaneous events resolve
/// deterministically. Completions at time T are processed before a failure
/// at T — a task finishing exactly when its processor dies survives, and
/// its output messages are considered in flight.
struct Event {
  enum Kind { kCompletion = 0, kFailure = 1, kRejoin = 2 };
  Cost time;
  int kind;
  std::size_t seq;
  TaskId task;  ///< completing task, or the processor for kFailure/kRejoin
  bool operator>(const Event& other) const {
    return std::tie(time, kind, seq) >
           std::tie(other.time, other.kind, other.seq);
  }
};

/// Piecewise-constant speed profile of one processor: the speed at any
/// instant is the product of the factors of every slowdown active then (a
/// fault is active on [time, until)). finalize() materialises (boundary,
/// speed) segments, recomputing each product from scratch so a fully
/// recovered processor returns to exactly 1.0 — multiplying by 1/factor on
/// recovery would drift for non-power-of-two factors. run() integrates a
/// task's work through the profile, pausing at checkpoint marks,
/// optionally cut short by a fail-stop kill.
class ProcProfile {
 public:
  void add(Cost time, double factor, Cost until = kInfiniteTime) {
    faults_.push_back({time, factor, until});
  }

  void finalize() {
    std::vector<Cost> bounds;
    for (const Fault& f : faults_) {
      bounds.push_back(f.time);
      if (f.until != kInfiniteTime) bounds.push_back(f.until);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    double prev = 1.0;
    for (Cost b : bounds) {
      double speed = 1.0;
      for (const Fault& f : faults_)
        if (f.time <= b && b < f.until) speed *= f.factor;
      if (speed != prev) {
        segments_.push_back({b, speed});
        prev = speed;
      }
    }
  }

  [[nodiscard]] bool trivial() const { return segments_.empty(); }

  struct Trace {
    Cost end = 0.0;      ///< finish time, or the kill instant when killed
    Cost done = 0.0;     ///< work units completed by `end`
    Cost saved = 0.0;    ///< work protected by durable checkpoints
    std::size_t checkpoints = 0;  ///< durable checkpoint writes
    Cost overhead = 0.0;          ///< wall time spent on those writes
    bool finished = false;
  };

  /// Execute `work` units starting at `start`, stopping at `kill`. A
  /// checkpoint whose write has not completed by `kill` is not durable.
  [[nodiscard]] Trace run(Cost start, Cost work, const CheckpointPolicy& ckpt,
                          Cost kill = kInfiniteTime) const {
    Trace tr;
    tr.end = std::min(start, kill);
    if (start >= kill) return tr;  // never began computing
    if (segments_.empty() && !ckpt.enabled()) {
      Cost finish = start + work;
      if (finish <= kill) {
        tr.end = finish;
        tr.done = work;
        tr.finished = true;
      } else {
        tr.end = kill;
        tr.done = kill - start;
      }
      return tr;
    }

    Cost tau = start;
    double speed = 1.0;
    std::size_t next_seg = 0;
    while (next_seg < segments_.size() && segments_[next_seg].first <= tau)
      speed = segments_[next_seg++].second;
    Cost next_mark = ckpt.enabled() ? ckpt.interval : kInfiniteTime;

    while (true) {
      const Cost target = std::min(work, next_mark);
      const Cost seg_end =
          next_seg < segments_.size() ? segments_[next_seg].first
                                      : kInfiniteTime;
      const Cost reach = tau + (target - tr.done) / speed;
      if (reach <= seg_end) {
        if (reach > kill) {  // killed mid-computation
          tr.done += speed * (kill - tau);
          tr.end = kill;
          return tr;
        }
        tau = reach;
        tr.done = target;
        if (tr.done >= work) {  // complete (no write at the final instant)
          tr.end = tau;
          tr.finished = true;
          return tr;
        }
        // Durable checkpoint write at this mark.
        if (ckpt.overhead > 0.0) {
          if (tau + ckpt.overhead > kill) {  // write interrupted: discarded
            tr.end = kill;
            return tr;
          }
          tau += ckpt.overhead;
          tr.overhead += ckpt.overhead;
        }
        tr.saved = next_mark;
        ++tr.checkpoints;
        next_mark += ckpt.interval;
        if (tau >= kill) {  // killed right after the write became durable
          tr.end = kill;
          return tr;
        }
      } else {  // the speed changes before the next milestone
        if (seg_end >= kill) {
          tr.done += speed * (kill - tau);
          tr.end = kill;
          return tr;
        }
        tr.done += speed * (seg_end - tau);
        tau = seg_end;
        while (next_seg < segments_.size() && segments_[next_seg].first <= tau)
          speed = segments_[next_seg++].second;
      }
    }
  }

 private:
  struct Fault {
    Cost time;
    double factor;
    Cost until;
  };
  std::vector<Fault> faults_;
  std::vector<std::pair<Cost, double>> segments_;  // (boundary, new speed)
};

}  // namespace

SimResult simulate(const TaskGraph& g, const Schedule& s,
                   const SimOptions& options) {
  const TaskId n = g.num_tasks();
  FLB_REQUIRE(s.complete(), "simulate: schedule is incomplete");
  FLB_REQUIRE(options.latency_factor >= 0.0,
              "simulate: latency factor must be non-negative");
  FLB_REQUIRE(options.work_override == nullptr ||
                  options.work_override->size() == n,
              "simulate: work override must have one entry per task");
  const FaultPlan* plan = options.faults;
  if (plan != nullptr && plan->trivial()) plan = nullptr;
  ResolvedFaults resolved;
  if (plan != nullptr) {
    plan->validate(s.num_procs());
    resolved = resolve_faults(*plan);
  }
  const CheckpointPolicy ckpt =
      plan != nullptr ? plan->checkpoint : CheckpointPolicy{};

  SimResult result;
  result.start.assign(n, kUndefinedTime);
  result.finish.assign(n, kUndefinedTime);

  const ProcId procs = s.num_procs();
  std::vector<std::size_t> dispatch_idx(procs, 0);  // next task per proc
  std::vector<Cost> proc_free(procs, 0.0);
  std::vector<Cost> send_free(procs, 0.0);
  std::vector<Cost> recv_free(procs, 0.0);
  std::vector<bool> dead(procs, false);

  std::vector<ProcProfile> profiles(procs);
  // Instant the processor last rebooted (kUndefinedTime = never): data that
  // reached it at or before this instant was lost with its memory and must
  // be re-fetched by any consumer dispatched after the rejoin.
  std::vector<Cost> rejoined_at(procs, kUndefinedTime);
  if (plan != nullptr) {
    for (const SlowdownFault& f : resolved.slowdowns)
      profiles[f.proc].add(f.time, f.factor, f.until);
    for (ProcProfile& p : profiles) p.finalize();
    result.checkpointed.assign(n, 0.0);
    result.proc_work_lost.assign(procs, 0.0);
  }

  // arrival[e] for remote edges, indexed like g's successor CSR; local
  // edges are handled through `finished`. A dropped message leaves its slot
  // at kUndefinedTime forever and marks the consumer starved.
  std::vector<Cost> arrival(g.num_edges(), kUndefinedTime);
  std::vector<std::size_t> edge_offset(n + 1, 0);
  for (TaskId t = 0; t < n; ++t)
    edge_offset[t + 1] = edge_offset[t] + g.out_degree(t);

  std::vector<bool> finished(n, false);
  std::vector<bool> dispatched(n, false);
  std::vector<bool> killed(n, false);   // dispatched, then lost to a failure
  std::vector<bool> starved(n, false);  // an input message was dropped
  std::vector<std::size_t> pending_preds(n);
  for (TaskId t = 0; t < n; ++t) pending_preds[t] = g.in_degree(t);

  // Effective work per task: the override wins (it already includes any
  // perturbation — checkpoint-resumed tasks carry only their remainder),
  // otherwise the graph's cost scaled by the plan's runtime factor.
  auto work_of = [&](TaskId t) -> Cost {
    if (options.work_override != nullptr &&
        (*options.work_override)[t] != kUndefinedTime)
      return (*options.work_override)[t];
    return plan ? g.comp(t) * runtime_factor(*plan, t) : g.comp(t);
  };

  // Position of each (pred -> t) edge inside pred's successor list, so the
  // consumer can find its arrival slot.
  auto arrival_slot = [&](TaskId pred, TaskId to) -> std::size_t {
    auto succs = g.successors(pred);
    for (std::size_t i = 0; i < succs.size(); ++i)
      if (succs[i].node == to) return edge_offset[pred] + i;
    FLB_ASSERT(false);
    return 0;
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::size_t seq = 0;
  TaskId completed = 0;

  if (plan != nullptr) {
    for (const ProcFailure& f : resolved.failures)
      events.push({f.time, Event::kFailure, seq++, f.proc});
    for (const ProcRejoin& r : resolved.rejoins)
      events.push({r.time, Event::kRejoin, seq++, r.proc});
  }

  // Try to dispatch the head task of processor p. All arrival times are
  // known once every predecessor has finished, so the completion event can
  // be scheduled immediately even if the start lies in the future (the
  // finish integrates the processor's speed profile and checkpoint
  // pauses). A dead processor never dispatches; a starved head task blocks
  // its processor for good (dispatch is in schedule order).
  auto try_dispatch = [&](ProcId p) {
    if (dead[p]) return;
    while (dispatch_idx[p] < s.tasks_on(p).size()) {
      TaskId t = s.tasks_on(p)[dispatch_idx[p]];
      if (dispatched[t]) {
        ++dispatch_idx[p];
        continue;
      }
      if (starved[t]) return;            // its message will never come
      if (pending_preds[t] > 0) return;  // retried when the last pred ends
      Cost start = proc_free[p];
      const Cost cold = rejoined_at[p];
      for (const Adj& a : g.predecessors(t)) {
        Cost avail;
        if (s.proc(a.node) == p) {
          avail = result.finish[a.node];
        } else {
          avail = arrival[arrival_slot(a.node, t)];
          FLB_ASSERT(avail != kUndefinedTime);
        }
        // Cold caches: data that reached p at or before the reboot was
        // lost with its memory; re-fetch it from the rejoin instant.
        if (cold != kUndefinedTime && avail <= cold)
          avail = cold + a.comm * options.latency_factor;
        start = std::max(start, avail);
      }
      dispatched[t] = true;
      result.start[t] = start;
      if (plan != nullptr) {
        ProcProfile::Trace tr = profiles[p].run(start, work_of(t), ckpt);
        FLB_ASSERT(tr.finished);
        result.finish[t] = tr.end;
      } else {
        result.finish[t] = start + work_of(t);
      }
      proc_free[p] = result.finish[t];
      events.push({result.finish[t], Event::kCompletion, seq++, t});
      ++dispatch_idx[p];
    }
  };

  for (ProcId p = 0; p < procs; ++p) try_dispatch(p);

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();

    if (ev.kind == Event::kFailure) {
      const ProcId p = static_cast<ProcId>(ev.task);
      if (dead[p]) continue;  // duplicate failure entry
      dead[p] = true;
      // Kill every dispatched-but-unfinished task on p. Dispatch runs
      // ahead of simulated time, so this covers both the task physically
      // executing at ev.time (its unprotected work is lost; durable
      // checkpoints survive) and tasks whose planned start lies beyond the
      // failure.
      for (TaskId t : s.tasks_on(p)) {
        if (!dispatched[t] || finished[t] || killed[t]) continue;
        killed[t] = true;
        ProcProfile::Trace tr =
            profiles[p].run(result.start[t], work_of(t), ckpt, ev.time);
        result.work_lost += tr.done - tr.saved;
        result.proc_work_lost[p] += tr.done - tr.saved;
        result.work_saved += tr.saved;
        result.checkpointed[t] = tr.saved;
        result.checkpoints_taken += tr.checkpoints;
        result.checkpoint_overhead += tr.overhead;
        result.start[t] = kUndefinedTime;
        result.finish[t] = kUndefinedTime;
      }
      continue;
    }

    if (ev.kind == Event::kRejoin) {
      const ProcId p = static_cast<ProcId>(ev.task);
      if (!dead[p]) continue;  // canonicalization makes this unreachable
      dead[p] = false;
      rejoined_at[p] = ev.time;
      // Every dispatched-but-unfinished task on p was killed at the kill
      // instant, so the processor is genuinely idle at the reboot.
      proc_free[p] = ev.time;
      ++result.rejoins;
      try_dispatch(p);
      continue;
    }

    TaskId t = ev.task;
    if (killed[t]) continue;  // stale completion of a task lost to a failure
    finished[t] = true;
    ++completed;
    const ProcId p = s.proc(t);
    if (ckpt.enabled()) {
      ProcProfile::Trace tr = profiles[p].run(result.start[t], work_of(t), ckpt);
      result.checkpoints_taken += tr.checkpoints;
      result.checkpoint_overhead += tr.overhead;
    }

    // Emit messages to remote successors; ports are allocated now, in
    // global completion order. Under a fault plan each remote message
    // resolves its loss/delay fate deterministically from its edge slot.
    std::size_t slot = edge_offset[t];
    for (const Adj& a : g.successors(t)) {
      if (s.proc(a.node) != p) {
        Cost cost = a.comm * options.latency_factor;
        MessageOutcome fate;
        if (plan != nullptr) fate = resolve_message(*plan, slot);
        result.retries += fate.retries;
        if (fate.dropped) {
          ++result.dropped_messages;
          result.dropped_edges.emplace_back(t, a.node);
          starved[a.node] = true;
          ++slot;
          continue;
        }
        if (fate.delayed) cost *= plan->message.delay_factor;
        Cost send_start = ev.time + fate.retry_delay;
        if (options.network != SimNetwork::kContentionFree) {
          send_start = std::max(send_start, send_free[p]);
          send_free[p] = send_start + cost;
        }
        Cost arr = send_start + cost;
        if (options.network == SimNetwork::kSinglePortSendRecv) {
          ProcId dest = s.proc(a.node);
          Cost recv_start = std::max(send_start, recv_free[dest]);
          recv_free[dest] = recv_start + cost;
          arr = recv_start + cost;
        }
        arrival[slot] = arr;
        ++result.messages;
        result.network_busy += cost;
      }
      ++slot;
    }

    // Release successors and poke the processors that may now dispatch.
    try_dispatch(p);
    for (const Adj& a : g.successors(t)) {
      FLB_ASSERT(pending_preds[a.node] > 0);
      if (--pending_preds[a.node] == 0) try_dispatch(s.proc(a.node));
    }
  }

  if (plan == nullptr) {
    FLB_REQUIRE(completed == n,
                "simulate: dispatch deadlock — the schedule's per-processor "
                "order is inconsistent with the task dependences");
  } else {
    for (TaskId t = 0; t < n; ++t)
      if (!finished[t]) result.unfinished.push_back(t);
  }

  for (Cost f : result.finish)
    if (f != kUndefinedTime) result.makespan = std::max(result.makespan, f);
  if (plan != nullptr)
    for (ProcId p = 0; p < procs; ++p)
      result.dead_proc_idle += resolved.downtime(p, result.makespan);
  return result;
}

}  // namespace flb
