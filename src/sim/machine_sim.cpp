#include "flb/sim/machine_sim.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/util/error.hpp"
#include "flb/util/table.hpp"

namespace flb {

namespace {

/// Simulation event: (time, kind, sequence) so simultaneous events resolve
/// deterministically. Completions at time T are processed before a failure
/// at T — a task finishing exactly when its processor dies survives, and
/// its output messages are considered in flight.
struct Event {
  enum Kind { kCompletion = 0, kFailure = 1, kRejoin = 2 };
  Cost time;
  int kind;
  std::size_t seq;
  TaskId task;  ///< completing task, or the processor for kFailure/kRejoin
  /// Dispatch generation of a completion: a task returned to the queue by a
  /// failure (honor_start_times mode) bumps its epoch, so the stale
  /// completion of the canceled dispatch is ignored when it surfaces.
  std::size_t epoch = 0;
  bool operator>(const Event& other) const {
    return std::tie(time, kind, seq) >
           std::tie(other.time, other.kind, other.seq);
  }
};

}  // namespace

std::string to_string(const SimEvent& event) {
  std::ostringstream os;
  os << "t=" << format_compact(event.time) << " ";
  switch (event.kind) {
    case SimEventKind::kFailure:
      os << "failure p" << event.proc;
      break;
    case SimEventKind::kRejoin:
      os << "rejoin p" << event.proc;
      break;
    case SimEventKind::kSlowdownBegin:
      os << "slowdown-begin p" << event.proc << " x"
         << format_compact(event.value);
      break;
    case SimEventKind::kSlowdownEnd:
      os << "slowdown-end p" << event.proc << " x"
         << format_compact(event.value);
      break;
    case SimEventKind::kTaskKilled:
      os << "task-killed p" << event.proc << " t" << event.task
         << " saved=" << format_compact(event.value);
      break;
    case SimEventKind::kMessageDropped:
      os << "message-dropped p" << event.proc << " t" << event.task << "->t"
         << event.task2;
      break;
    case SimEventKind::kLinkPartitioned:
      os << "link-partitioned p" << event.proc << "~p" << event.proc2;
      break;
    case SimEventKind::kLinkHealed:
      os << "link-healed p" << event.proc << "~p" << event.proc2;
      break;
  }
  return os.str();
}

SimResult simulate(const TaskGraph& g, const Schedule& s,
                   const SimOptions& options) {
  const TaskId n = g.num_tasks();
  FLB_REQUIRE(s.complete(), "simulate: schedule is incomplete");
  FLB_REQUIRE(options.latency_factor >= 0.0,
              "simulate: latency factor must be non-negative");
  FLB_REQUIRE(options.work_override == nullptr ||
                  options.work_override->size() == n,
              "simulate: work override must have one entry per task");
  const FaultPlan* plan = options.faults;
  if (plan != nullptr && plan->trivial()) plan = nullptr;
  ResolvedFaults resolved;
  std::vector<LinkOutage> outages;
  if (plan != nullptr) {
    plan->validate(s.num_procs());
    resolved = resolve_faults(*plan);
    outages = resolve_partitions(*plan);
  }
  const CheckpointPolicy ckpt =
      plan != nullptr ? plan->checkpoint : CheckpointPolicy{};
  const std::vector<Cost>* const ckpt_override =
      plan != nullptr ? options.checkpoint_interval : nullptr;
  if (ckpt_override != nullptr) {
    FLB_REQUIRE(ckpt_override->size() == n,
                "simulate: checkpoint-interval override must have one entry "
                "per task");
    for (const Cost iv : *ckpt_override)
      FLB_REQUIRE(iv == kUndefinedTime || (std::isfinite(iv) && iv >= 0.0),
                  "simulate: checkpoint-interval override entries must be "
                  "finite and non-negative (or kUndefinedTime)");
  }

  // Criticality-aware checkpoint placement: with min_downstream > 0 only
  // tasks whose bottom level reaches the threshold write checkpoints; the
  // rest run with the policy disabled.
  std::vector<Cost> downstream;
  if (plan != nullptr && ckpt.enabled() && ckpt.min_downstream > 0.0)
    downstream = bottom_levels(g);
  auto ckpt_of = [&](TaskId t) -> CheckpointPolicy {
    if (!downstream.empty() && !ckpt.covers(downstream[t]))
      return CheckpointPolicy{};
    CheckpointPolicy p = ckpt;
    if (ckpt_override != nullptr && (*ckpt_override)[t] != kUndefinedTime)
      p.interval = (*ckpt_override)[t];
    return p;
  };

  std::vector<SimEvent>* const log = options.event_log;
  if (log != nullptr) log->clear();

  SimResult result;
  result.start.assign(n, kUndefinedTime);
  result.finish.assign(n, kUndefinedTime);

  const ProcId procs = s.num_procs();
  std::vector<std::size_t> dispatch_idx(procs, 0);  // next task per proc
  std::vector<Cost> proc_free(procs, 0.0);
  std::vector<Cost> send_free(procs, 0.0);
  std::vector<Cost> recv_free(procs, 0.0);
  std::vector<bool> dead(procs, false);

  // Piecewise-constant per-processor speed profiles (flb::platform), plus a
  // clique cost model that owns every message price in this simulator:
  // remote transfers and cold-cache re-fetches are both
  // net.message_cost(bytes) = bytes * latency_factor.
  platform::CostModel net = platform::CostModel::clique(procs);
  net.set_latency_factor(options.latency_factor);
  std::vector<platform::SpeedProfile> profiles(procs);
  // Instant the processor last rebooted (kUndefinedTime = never): data that
  // reached it at or before this instant was lost with its memory and must
  // be re-fetched by any consumer dispatched after the rejoin.
  std::vector<Cost> rejoined_at(procs, kUndefinedTime);
  if (plan != nullptr) {
    for (const SlowdownFault& f : resolved.slowdowns)
      profiles[f.proc].add(f.time, f.factor, f.until);
    for (platform::SpeedProfile& p : profiles) p.finalize();
    result.checkpointed.assign(n, 0.0);
    result.proc_work_lost.assign(procs, 0.0);
  }

  // arrival[e] for remote edges, indexed like g's successor CSR; local
  // edges are handled through `finished`. A dropped message leaves its slot
  // at kUndefinedTime forever and marks the consumer starved.
  std::vector<Cost> arrival(g.num_edges(), kUndefinedTime);
  std::vector<std::size_t> edge_offset(n + 1, 0);
  for (TaskId t = 0; t < n; ++t)
    edge_offset[t + 1] = edge_offset[t] + g.out_degree(t);

  std::vector<bool> finished(n, false);
  std::vector<bool> dispatched(n, false);
  std::vector<bool> killed(n, false);   // dispatched, then lost to a failure
  std::vector<bool> starved(n, false);  // an input message was dropped
  // Dispatch generation per task (see Event::epoch); only ever bumped in
  // honor_start_times mode, when a failure returns unstarted work to the
  // queue.
  std::vector<std::size_t> epoch(n, 0);
  std::vector<std::size_t> pending_preds(n);
  for (TaskId t = 0; t < n; ++t) pending_preds[t] = g.in_degree(t);

  // Effective work per task: the override wins (it already includes any
  // perturbation — checkpoint-resumed tasks carry only their remainder),
  // otherwise the graph's cost scaled by the plan's runtime factor.
  auto work_of = [&](TaskId t) -> Cost {
    if (options.work_override != nullptr &&
        (*options.work_override)[t] != kUndefinedTime)
      return (*options.work_override)[t];
    return plan ? g.comp(t) * runtime_factor(*plan, t) : g.comp(t);
  };

  // Position of each (pred -> t) edge inside pred's successor list, so the
  // consumer can find its arrival slot.
  auto arrival_slot = [&](TaskId pred, TaskId to) -> std::size_t {
    auto succs = g.successors(pred);
    for (std::size_t i = 0; i < succs.size(); ++i)
      if (succs[i].node == to) return edge_offset[pred] + i;
    FLB_ASSERT(false);
    return 0;
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::size_t seq = 0;
  TaskId completed = 0;

  if (plan != nullptr) {
    for (const ProcFailure& f : resolved.failures)
      events.push({f.time, Event::kFailure, seq++, f.proc});
    for (const ProcRejoin& r : resolved.rejoins)
      events.push({r.time, Event::kRejoin, seq++, r.proc});
    if (log != nullptr) {
      // Machine-level events are schedule-independent: they surface from
      // the resolved plan alone, observed at their strike instants.
      for (const ProcFailure& f : resolved.failures)
        log->push_back({f.time, SimEventKind::kFailure, f.proc,
                        kInvalidTask, kInvalidTask, 0.0});
      for (const ProcRejoin& r : resolved.rejoins)
        log->push_back({r.time, SimEventKind::kRejoin, r.proc, kInvalidTask,
                        kInvalidTask, 0.0});
      for (const SlowdownFault& f : resolved.slowdowns) {
        log->push_back({f.time, SimEventKind::kSlowdownBegin, f.proc,
                        kInvalidTask, kInvalidTask, f.factor});
        if (f.until != kInfiniteTime)
          log->push_back({f.until, SimEventKind::kSlowdownEnd, f.proc,
                          kInvalidTask, kInvalidTask, f.factor});
      }
      for (const LinkOutage& w : outages) {
        log->push_back({w.time, SimEventKind::kLinkPartitioned, w.a,
                        kInvalidTask, kInvalidTask, 0.0, w.b});
        if (w.until != kInfiniteTime)
          log->push_back({w.until, SimEventKind::kLinkHealed, w.a,
                          kInvalidTask, kInvalidTask, 0.0, w.b});
      }
    }
  }

  // Try to dispatch the head task of processor p. All arrival times are
  // known once every predecessor has finished, so the completion event can
  // be scheduled immediately even if the start lies in the future (the
  // finish integrates the processor's speed profile and checkpoint
  // pauses). A dead processor never dispatches; a starved head task blocks
  // its processor for good (dispatch is in schedule order).
  auto try_dispatch = [&](ProcId p) {
    if (dead[p]) return;
    while (dispatch_idx[p] < s.tasks_on(p).size()) {
      TaskId t = s.tasks_on(p)[dispatch_idx[p]];
      if (dispatched[t]) {
        ++dispatch_idx[p];
        continue;
      }
      if (starved[t]) return;            // its message will never come
      if (pending_preds[t] > 0) return;  // retried when the last pred ends
      Cost start = proc_free[p];
      // Continuation mode: ST(t) is a release instant, not a replayed time.
      if (options.honor_start_times) start = std::max(start, s.start(t));
      const Cost cold = rejoined_at[p];
      for (const Adj& a : g.predecessors(t)) {
        Cost avail;
        if (s.proc(a.node) == p) {
          avail = result.finish[a.node];
        } else {
          avail = arrival[arrival_slot(a.node, t)];
          FLB_ASSERT(avail != kUndefinedTime);
        }
        // Cold caches: data that reached p at or before the reboot was
        // lost with its memory; re-fetch it from the rejoin instant.
        if (cold != kUndefinedTime && avail <= cold)
          avail = cold + net.message_cost(a.comm);
        start = std::max(start, avail);
      }
      dispatched[t] = true;
      result.start[t] = start;
      if (plan != nullptr) {
        platform::SpeedProfile::Trace tr =
            profiles[p].run(start, work_of(t), ckpt_of(t));
        FLB_ASSERT(tr.finished);
        result.finish[t] = tr.end;
      } else {
        result.finish[t] = start + work_of(t);
      }
      proc_free[p] = result.finish[t];
      events.push({result.finish[t], Event::kCompletion, seq++, t, epoch[t]});
      ++dispatch_idx[p];
    }
  };

  for (ProcId p = 0; p < procs; ++p) try_dispatch(p);

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();

    if (ev.kind == Event::kFailure) {
      const ProcId p = static_cast<ProcId>(ev.task);
      if (dead[p]) continue;  // duplicate failure entry
      dead[p] = true;
      // Kill every dispatched-but-unfinished task on p. Dispatch runs
      // ahead of simulated time, so this covers both the task physically
      // executing at ev.time (its unprotected work is lost; durable
      // checkpoints survive) and tasks whose planned start lies beyond the
      // failure.
      bool requeued = false;
      for (TaskId t : s.tasks_on(p)) {
        if (!dispatched[t] || finished[t] || killed[t]) continue;
        // Continuation mode: a task that had not yet *started* when the
        // processor died loses nothing — it returns to the queue and is
        // re-dispatched if the processor rejoins. Only work physically in
        // flight at the strike is lost.
        if (options.honor_start_times && result.start[t] >= ev.time) {
          dispatched[t] = false;
          ++epoch[t];
          result.start[t] = kUndefinedTime;
          result.finish[t] = kUndefinedTime;
          requeued = true;
          continue;
        }
        killed[t] = true;
        platform::SpeedProfile::Trace tr =
            profiles[p].run(result.start[t], work_of(t), ckpt_of(t), ev.time);
        if (log != nullptr)
          log->push_back({ev.time, SimEventKind::kTaskKilled, p, t,
                          kInvalidTask, tr.saved});
        result.work_lost += tr.done - tr.saved;
        result.proc_work_lost[p] += tr.done - tr.saved;
        result.work_saved += tr.saved;
        result.checkpointed[t] = tr.saved;
        result.checkpoints_taken += tr.checkpoints;
        result.checkpoint_overhead += tr.overhead;
        result.start[t] = kUndefinedTime;
        result.finish[t] = kUndefinedTime;
      }
      // Returned tasks sit before dispatch_idx; rewind so a rejoin's
      // try_dispatch reconsiders them (already-dispatched ones are skipped).
      if (requeued) dispatch_idx[p] = 0;
      continue;
    }

    if (ev.kind == Event::kRejoin) {
      const ProcId p = static_cast<ProcId>(ev.task);
      if (!dead[p]) continue;  // canonicalization makes this unreachable
      dead[p] = false;
      rejoined_at[p] = ev.time;
      // Every dispatched-but-unfinished task on p was killed at the kill
      // instant (or, in honor_start_times mode, returned to the queue), so
      // the processor is genuinely idle at the reboot.
      proc_free[p] = ev.time;
      ++result.rejoins;
      try_dispatch(p);
      continue;
    }

    TaskId t = ev.task;
    if (killed[t]) continue;  // stale completion of a task lost to a failure
    if (ev.epoch != epoch[t]) continue;  // canceled dispatch, re-queued
    finished[t] = true;
    ++completed;
    const ProcId p = s.proc(t);
    if (const CheckpointPolicy cp = ckpt_of(t); cp.enabled()) {
      platform::SpeedProfile::Trace tr =
          profiles[p].run(result.start[t], work_of(t), cp);
      result.checkpoints_taken += tr.checkpoints;
      result.checkpoint_overhead += tr.overhead;
    }

    // Emit messages to remote successors; ports are allocated now, in
    // global completion order. Under a fault plan each remote message
    // resolves its loss/delay fate deterministically from its edge slot.
    std::size_t slot = edge_offset[t];
    for (const Adj& a : g.successors(t)) {
      if (s.proc(a.node) != p) {
        Cost cost = net.message_cost(a.comm);
        MessageOutcome fate;
        if (plan != nullptr) fate = resolve_message(*plan, slot);
        result.retries += fate.retries;
        if (fate.dropped) {
          ++result.dropped_messages;
          result.dropped_edges.emplace_back(t, a.node);
          starved[a.node] = true;
          // The sender observes the loss once the exhausted retry timeouts
          // have all expired — not at the first attempt.
          if (log != nullptr)
            log->push_back({ev.time + fate.retry_delay,
                            SimEventKind::kMessageDropped, p, t, a.node,
                            0.0});
          ++slot;
          continue;
        }
        if (fate.delayed) cost *= plan->message.delay_factor;
        Cost send_start = ev.time + fate.retry_delay;
        // Partial partitions: a message whose direct link is down at its
        // send instant reroutes over the shortest detour of live links
        // (store-and-forward, one full transfer per hop). With no live
        // path it is held back to the earliest heal instant that restores
        // one; with no such instant (a permanent total cut) it is dropped
        // like an exhausted retry — re-execution repair's problem.
        if (!outages.empty() &&
            link_partitioned(outages, p, s.proc(a.node), send_start)) {
          const ProcId dest = s.proc(a.node);
          std::size_t hops = reroute_hops(outages, procs, p, dest, send_start);
          if (hops == 0) {
            Cost heal = kInfiniteTime;
            for (const LinkOutage& w : outages)
              if (w.until != kInfiniteTime && w.until > send_start &&
                  w.until < heal &&
                  reroute_hops(outages, procs, p, dest, w.until) > 0)
                heal = w.until;
            if (heal == kInfiniteTime) {
              ++result.dropped_messages;
              ++result.partition_dropped;
              result.dropped_edges.emplace_back(t, a.node);
              starved[a.node] = true;
              if (log != nullptr)
                log->push_back({send_start, SimEventKind::kMessageDropped, p,
                                t, a.node, 0.0});
              ++slot;
              continue;
            }
            result.reroute_extra += heal - send_start;
            send_start = heal;
            hops = reroute_hops(outages, procs, p, dest, heal);
          }
          if (hops > 1) {
            result.reroute_extra += static_cast<Cost>(hops - 1) * cost;
            cost *= static_cast<Cost>(hops);
          }
          ++result.rerouted_messages;
        }
        if (options.network != SimNetwork::kContentionFree) {
          send_start = std::max(send_start, send_free[p]);
          send_free[p] = send_start + cost;
        }
        Cost arr = send_start + cost;
        if (options.network == SimNetwork::kSinglePortSendRecv) {
          ProcId dest = s.proc(a.node);
          Cost recv_start = std::max(send_start, recv_free[dest]);
          recv_free[dest] = recv_start + cost;
          arr = recv_start + cost;
        }
        arrival[slot] = arr;
        ++result.messages;
        result.network_busy += cost;
      }
      ++slot;
    }

    // Release successors and poke the processors that may now dispatch.
    try_dispatch(p);
    for (const Adj& a : g.successors(t)) {
      FLB_ASSERT(pending_preds[a.node] > 0);
      if (--pending_preds[a.node] == 0) try_dispatch(s.proc(a.node));
    }
  }

  if (plan == nullptr) {
    FLB_REQUIRE(completed == n,
                "simulate: dispatch deadlock — the schedule's per-processor "
                "order is inconsistent with the task dependences");
  } else {
    for (TaskId t = 0; t < n; ++t)
      if (!finished[t]) result.unfinished.push_back(t);
  }

  for (Cost f : result.finish)
    if (f != kUndefinedTime) result.makespan = std::max(result.makespan, f);
  if (plan != nullptr)
    for (ProcId p = 0; p < procs; ++p)
      result.dead_proc_idle += resolved.downtime(p, result.makespan);
  // Canonical log order: events are collected as the simulation encounters
  // them; the sorted stream is a pure value of (plan, schedule), so two
  // runs diff byte-identically.
  if (log != nullptr) std::sort(log->begin(), log->end());
  return result;
}

}  // namespace flb
