#include "flb/sim/machine_sim.hpp"

#include <algorithm>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

#include "flb/util/error.hpp"

namespace flb {

namespace {

/// Simulation event: (time, kind, sequence) so simultaneous events resolve
/// deterministically. Completions at time T are processed before a failure
/// at T — a task finishing exactly when its processor dies survives, and
/// its output messages are considered in flight.
struct Event {
  enum Kind { kCompletion = 0, kFailure = 1 };
  Cost time;
  int kind;
  std::size_t seq;
  TaskId task;  ///< completing task, or the failing processor for kFailure
  bool operator>(const Event& other) const {
    return std::tie(time, kind, seq) >
           std::tie(other.time, other.kind, other.seq);
  }
};

}  // namespace

SimResult simulate(const TaskGraph& g, const Schedule& s,
                   const SimOptions& options) {
  const TaskId n = g.num_tasks();
  FLB_REQUIRE(s.complete(), "simulate: schedule is incomplete");
  FLB_REQUIRE(options.latency_factor >= 0.0,
              "simulate: latency factor must be non-negative");
  const FaultPlan* plan = options.faults;
  if (plan != nullptr && plan->trivial()) plan = nullptr;
  if (plan != nullptr) plan->validate(s.num_procs());

  SimResult result;
  result.start.assign(n, kUndefinedTime);
  result.finish.assign(n, kUndefinedTime);

  const ProcId procs = s.num_procs();
  std::vector<std::size_t> dispatch_idx(procs, 0);  // next task per proc
  std::vector<Cost> proc_free(procs, 0.0);
  std::vector<Cost> send_free(procs, 0.0);
  std::vector<Cost> recv_free(procs, 0.0);
  std::vector<bool> dead(procs, false);

  // arrival[e] for remote edges, indexed like g's successor CSR; local
  // edges are handled through `finished`. A dropped message leaves its slot
  // at kUndefinedTime forever and marks the consumer starved.
  std::vector<Cost> arrival(g.num_edges(), kUndefinedTime);
  std::vector<std::size_t> edge_offset(n + 1, 0);
  for (TaskId t = 0; t < n; ++t)
    edge_offset[t + 1] = edge_offset[t] + g.out_degree(t);

  std::vector<bool> finished(n, false);
  std::vector<bool> dispatched(n, false);
  std::vector<bool> killed(n, false);   // dispatched, then lost to a failure
  std::vector<bool> starved(n, false);  // an input message was dropped
  std::vector<std::size_t> pending_preds(n);
  for (TaskId t = 0; t < n; ++t) pending_preds[t] = g.in_degree(t);

  // Effective computation times (perturbed when the plan says so).
  auto comp_of = [&](TaskId t) -> Cost {
    return plan ? g.comp(t) * runtime_factor(*plan, t) : g.comp(t);
  };

  // Position of each (pred -> t) edge inside pred's successor list, so the
  // consumer can find its arrival slot.
  auto arrival_slot = [&](TaskId pred, TaskId to) -> std::size_t {
    auto succs = g.successors(pred);
    for (std::size_t i = 0; i < succs.size(); ++i)
      if (succs[i].node == to) return edge_offset[pred] + i;
    FLB_ASSERT(false);
    return 0;
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::size_t seq = 0;
  TaskId completed = 0;

  if (plan != nullptr)
    for (const ProcFailure& f : plan->failures)
      events.push({f.time, Event::kFailure, seq++, f.proc});

  // Try to dispatch the head task of processor p. All arrival times are
  // known once every predecessor has finished, so the completion event can
  // be scheduled immediately even if the start lies in the future. A dead
  // processor never dispatches; a starved head task blocks its processor
  // for good (dispatch is in schedule order).
  auto try_dispatch = [&](ProcId p) {
    if (dead[p]) return;
    while (dispatch_idx[p] < s.tasks_on(p).size()) {
      TaskId t = s.tasks_on(p)[dispatch_idx[p]];
      if (dispatched[t]) {
        ++dispatch_idx[p];
        continue;
      }
      if (starved[t]) return;            // its message will never come
      if (pending_preds[t] > 0) return;  // retried when the last pred ends
      Cost start = proc_free[p];
      for (const Adj& a : g.predecessors(t)) {
        if (s.proc(a.node) == p) {
          start = std::max(start, result.finish[a.node]);
        } else {
          Cost arr = arrival[arrival_slot(a.node, t)];
          FLB_ASSERT(arr != kUndefinedTime);
          start = std::max(start, arr);
        }
      }
      dispatched[t] = true;
      result.start[t] = start;
      result.finish[t] = start + comp_of(t);
      proc_free[p] = result.finish[t];
      events.push({result.finish[t], Event::kCompletion, seq++, t});
      ++dispatch_idx[p];
    }
  };

  for (ProcId p = 0; p < procs; ++p) try_dispatch(p);

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();

    if (ev.kind == Event::kFailure) {
      const ProcId p = static_cast<ProcId>(ev.task);
      if (dead[p]) continue;  // duplicate failure entry
      dead[p] = true;
      // Kill every dispatched-but-unfinished task on p. Dispatch runs
      // ahead of simulated time, so this covers both the task physically
      // executing at ev.time (its partial work is lost) and tasks whose
      // planned start lies beyond the failure.
      for (TaskId t : s.tasks_on(p)) {
        if (!dispatched[t] || finished[t] || killed[t]) continue;
        killed[t] = true;
        if (result.start[t] < ev.time)
          result.work_lost += ev.time - result.start[t];
        result.start[t] = kUndefinedTime;
        result.finish[t] = kUndefinedTime;
      }
      continue;
    }

    TaskId t = ev.task;
    if (killed[t]) continue;  // stale completion of a task lost to a failure
    finished[t] = true;
    ++completed;
    const ProcId p = s.proc(t);

    // Emit messages to remote successors; ports are allocated now, in
    // global completion order. Under a fault plan each remote message
    // resolves its loss/delay fate deterministically from its edge slot.
    std::size_t slot = edge_offset[t];
    for (const Adj& a : g.successors(t)) {
      if (s.proc(a.node) != p) {
        Cost cost = a.comm * options.latency_factor;
        MessageOutcome fate;
        if (plan != nullptr) fate = resolve_message(*plan, slot);
        result.retries += fate.retries;
        if (fate.dropped) {
          ++result.dropped_messages;
          starved[a.node] = true;
          ++slot;
          continue;
        }
        if (fate.delayed) cost *= plan->message.delay_factor;
        Cost send_start = ev.time + fate.retry_delay;
        if (options.network != SimNetwork::kContentionFree) {
          send_start = std::max(send_start, send_free[p]);
          send_free[p] = send_start + cost;
        }
        Cost arr = send_start + cost;
        if (options.network == SimNetwork::kSinglePortSendRecv) {
          ProcId dest = s.proc(a.node);
          Cost recv_start = std::max(send_start, recv_free[dest]);
          recv_free[dest] = recv_start + cost;
          arr = recv_start + cost;
        }
        arrival[slot] = arr;
        ++result.messages;
        result.network_busy += cost;
      }
      ++slot;
    }

    // Release successors and poke the processors that may now dispatch.
    try_dispatch(p);
    for (const Adj& a : g.successors(t)) {
      FLB_ASSERT(pending_preds[a.node] > 0);
      if (--pending_preds[a.node] == 0) try_dispatch(s.proc(a.node));
    }
  }

  if (plan == nullptr) {
    FLB_REQUIRE(completed == n,
                "simulate: dispatch deadlock — the schedule's per-processor "
                "order is inconsistent with the task dependences");
  } else {
    for (TaskId t = 0; t < n; ++t)
      if (!finished[t]) result.unfinished.push_back(t);
  }

  for (Cost f : result.finish)
    if (f != kUndefinedTime) result.makespan = std::max(result.makespan, f);
  if (plan != nullptr)
    for (ProcId p = 0; p < procs; ++p)
      if (dead[p])
        result.dead_proc_idle +=
            std::max(0.0, result.makespan - plan->death_time(p));
  return result;
}

}  // namespace flb
