#include <cctype>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "flb/sim/faults.hpp"
#include "flb/util/error.hpp"

/// \file fault_plan_io.cpp
/// Text (de)serialization of FaultPlan — see the format comment in
/// faults.hpp. Kept separate from faults.cpp so the fault *semantics*
/// (resolution, randomness) stay independent of the ingestion path, which
/// is fuzzed.

namespace flb {

namespace {

bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '#') continue;
    return true;
  }
  return false;
}

[[noreturn]] void bad_line(const std::string& line, const char* why) {
  throw Error("read_fault_plan: " + std::string(why) + " in line '" + line +
              "'");
}

double field(std::istringstream& ls, const std::string& line,
             const char* what) {
  double v = 0.0;
  if (!(ls >> v)) bad_line(line, what);
  if (!std::isfinite(v)) bad_line(line, what);
  return v;
}

double opt_field(std::istringstream& ls, const std::string& line,
                 const char* what, double fallback) {
  std::string word;
  if (!(ls >> word)) return fallback;
  if (word == "inf") return kInfiniteTime;
  std::istringstream ws(word);
  double v = 0.0;
  if (!(ws >> v) || !ws.eof()) bad_line(line, what);
  if (std::isnan(v)) bad_line(line, what);
  return v;
}

ProcId proc_field(std::istringstream& ls, const std::string& line) {
  std::uint64_t p = 0;
  if (!(ls >> p)) bad_line(line, "missing or malformed processor id");
  if (p >= kInvalidProc) bad_line(line, "processor id out of range");
  return static_cast<ProcId>(p);
}

void expect_end(std::istringstream& ls, const std::string& line) {
  std::string rest;
  if (ls >> rest) bad_line(line, "trailing fields");
}

}  // namespace

FaultPlan read_fault_plan(std::istream& is) {
  std::string line;
  FLB_REQUIRE(next_line(is, line), "read_fault_plan: empty input");
  {
    std::istringstream ls(line);
    std::string magic;
    int version = 0;
    FLB_REQUIRE(static_cast<bool>(ls >> magic >> version) &&
                    magic == "flb-faultplan" && version == 1,
                "read_fault_plan: expected header 'flb-faultplan 1', got '" +
                    line + "'");
  }

  FaultPlan plan;
  while (next_line(is, line)) {
    std::istringstream ls(line);
    std::string directive;
    ls >> directive;
    if (directive == "seed") {
      if (!(ls >> plan.seed)) bad_line(line, "missing or malformed seed");
      expect_end(ls, line);
    } else if (directive == "runtime-spread") {
      plan.runtime_spread = field(ls, line, "missing or malformed spread");
      expect_end(ls, line);
    } else if (directive == "checkpoint") {
      plan.checkpoint.interval =
          field(ls, line, "missing or malformed checkpoint interval");
      plan.checkpoint.overhead =
          field(ls, line, "missing or malformed checkpoint overhead");
      plan.checkpoint.min_downstream =
          opt_field(ls, line, "malformed checkpoint min-downstream", 0.0);
      expect_end(ls, line);
    } else if (directive == "heartbeat") {
      HeartbeatConfig& h = plan.heartbeat;
      h.period = field(ls, line, "missing or malformed heartbeat period");
      h.loss_probability =
          field(ls, line, "malformed heartbeat loss probability");
      h.delay_probability =
          field(ls, line, "malformed heartbeat delay probability");
      h.delay_factor = field(ls, line, "malformed heartbeat delay factor");
      h.suspect_after =
          field(ls, line, "malformed heartbeat suspect threshold");
      h.confirm_after =
          field(ls, line, "malformed heartbeat confirm threshold");
      expect_end(ls, line);
    } else if (directive == "message") {
      MessageFaults& m = plan.message;
      m.loss_probability = field(ls, line, "malformed loss probability");
      m.delay_probability = field(ls, line, "malformed delay probability");
      m.delay_factor = field(ls, line, "malformed delay factor");
      double retries = field(ls, line, "malformed max retries");
      if (retries < 0.0 || retries != std::floor(retries) ||
          retries > 1e6)
        bad_line(line, "max retries must be a small non-negative integer");
      m.max_retries = static_cast<std::size_t>(retries);
      m.retry_timeout = field(ls, line, "malformed retry timeout");
      m.backoff = field(ls, line, "malformed backoff");
      expect_end(ls, line);
    } else if (directive == "fail") {
      ProcFailure f;
      f.proc = proc_field(ls, line);
      f.time = field(ls, line, "missing or malformed failure time");
      expect_end(ls, line);
      plan.failures.push_back(f);
    } else if (directive == "rejoin") {
      ProcRejoin r;
      r.proc = proc_field(ls, line);
      r.time = field(ls, line, "missing or malformed rejoin time");
      expect_end(ls, line);
      plan.rejoins.push_back(r);
    } else if (directive == "slowdown") {
      SlowdownFault s;
      s.proc = proc_field(ls, line);
      s.time = field(ls, line, "missing or malformed slowdown time");
      s.factor = field(ls, line, "missing or malformed slowdown factor");
      s.until = opt_field(ls, line, "malformed until", kInfiniteTime);
      expect_end(ls, line);
      plan.slowdowns.push_back(s);
    } else if (directive == "domain") {
      FailureDomain d;
      if (!(ls >> d.name)) bad_line(line, "missing domain name");
      std::uint64_t member = 0;
      while (ls >> member) {
        if (member >= kInvalidProc)
          bad_line(line, "domain member out of range");
        d.members.push_back(static_cast<ProcId>(member));
      }
      if (!ls.eof()) bad_line(line, "malformed domain member");
      if (d.members.empty()) bad_line(line, "domain lists no members");
      plan.domains.push_back(std::move(d));
    } else if (directive == "burst") {
      DomainBurst b;
      if (!(ls >> b.domain)) bad_line(line, "missing burst domain");
      b.time = field(ls, line, "missing or malformed burst time");
      b.window = field(ls, line, "missing or malformed burst window");
      b.probability = opt_field(ls, line, "malformed probability", 1.0);
      b.slowdown_factor = opt_field(ls, line, "malformed slowdown", 0.0);
      b.cascade_probability =
          opt_field(ls, line, "malformed cascade probability", 0.0);
      b.cascade_delay = opt_field(ls, line, "malformed cascade delay", 0.0);
      b.recovery_delay =
          opt_field(ls, line, "malformed recovery delay", 0.0);
      expect_end(ls, line);
      plan.bursts.push_back(std::move(b));
    } else if (directive == "partition") {
      PartitionFault p;
      std::string ends[2];
      if (!(ls >> ends[0] >> ends[1]))
        bad_line(line, "missing partition endpoint");
      for (int e = 0; e < 2; ++e) {
        ProcId& proc = e == 0 ? p.proc_a : p.proc_b;
        std::string& domain = e == 0 ? p.domain_a : p.domain_b;
        if (!ends[e].empty() && std::isdigit(
                static_cast<unsigned char>(ends[e][0]))) {
          std::istringstream ws(ends[e]);
          std::uint64_t id = 0;
          if (!(ws >> id) || !ws.eof())
            bad_line(line, "malformed partition endpoint");
          if (id >= kInvalidProc)
            bad_line(line, "partition endpoint out of range");
          proc = static_cast<ProcId>(id);
        } else {
          domain = ends[e];
        }
      }
      if (ends[0] == ends[1])
        bad_line(line, "a partition needs two distinct endpoints");
      p.time = field(ls, line, "missing or malformed partition time");
      p.until = opt_field(ls, line, "malformed until", kInfiniteTime);
      if (p.until <= p.time)
        bad_line(line, "partition heal instant must be after its onset");
      expect_end(ls, line);
      plan.partitions.push_back(std::move(p));
    } else {
      bad_line(line, "unknown directive");
    }
  }
  return plan;
}

FaultPlan fault_plan_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_fault_plan(is);
}

void write_fault_plan(std::ostream& os, const FaultPlan& plan) {
  const auto precision = os.precision(17);
  os << "flb-faultplan 1\n";
  os << "seed " << plan.seed << "\n";
  if (plan.runtime_spread != 0.0)
    os << "runtime-spread " << plan.runtime_spread << "\n";
  if (plan.checkpoint.enabled() || plan.checkpoint.overhead != 0.0 ||
      plan.checkpoint.min_downstream != 0.0) {
    os << "checkpoint " << plan.checkpoint.interval << " "
       << plan.checkpoint.overhead;
    if (plan.checkpoint.min_downstream != 0.0)
      os << " " << plan.checkpoint.min_downstream;
    os << "\n";
  }
  {
    const HeartbeatConfig defaults;
    const HeartbeatConfig& h = plan.heartbeat;
    if (h.period != defaults.period ||
        h.loss_probability != defaults.loss_probability ||
        h.delay_probability != defaults.delay_probability ||
        h.delay_factor != defaults.delay_factor ||
        h.suspect_after != defaults.suspect_after ||
        h.confirm_after != defaults.confirm_after)
      os << "heartbeat " << h.period << " " << h.loss_probability << " "
         << h.delay_probability << " " << h.delay_factor << " "
         << h.suspect_after << " " << h.confirm_after << "\n";
  }
  {
    const MessageFaults defaults;
    const MessageFaults& m = plan.message;
    if (m.loss_probability != defaults.loss_probability ||
        m.delay_probability != defaults.delay_probability ||
        m.delay_factor != defaults.delay_factor ||
        m.max_retries != defaults.max_retries ||
        m.retry_timeout != defaults.retry_timeout ||
        m.backoff != defaults.backoff)
      os << "message " << m.loss_probability << " " << m.delay_probability
         << " " << m.delay_factor << " " << m.max_retries << " "
         << m.retry_timeout << " " << m.backoff << "\n";
  }
  for (const ProcFailure& f : plan.failures)
    os << "fail " << f.proc << " " << f.time << "\n";
  for (const ProcRejoin& r : plan.rejoins)
    os << "rejoin " << r.proc << " " << r.time << "\n";
  for (const SlowdownFault& s : plan.slowdowns) {
    os << "slowdown " << s.proc << " " << s.time << " " << s.factor;
    if (s.until != kInfiniteTime) os << " " << s.until;
    os << "\n";
  }
  for (const FailureDomain& d : plan.domains) {
    os << "domain " << d.name;
    for (ProcId m : d.members) os << " " << m;
    os << "\n";
  }
  for (const DomainBurst& b : plan.bursts)
    os << "burst " << b.domain << " " << b.time << " " << b.window << " "
       << b.probability << " " << b.slowdown_factor << " "
       << b.cascade_probability << " " << b.cascade_delay << " "
       << b.recovery_delay << "\n";
  for (const PartitionFault& p : plan.partitions) {
    os << "partition ";
    if (p.domain_a.empty())
      os << p.proc_a;
    else
      os << p.domain_a;
    os << " ";
    if (p.domain_b.empty())
      os << p.proc_b;
    else
      os << p.domain_b;
    os << " " << p.time;
    if (p.until != kInfiniteTime) os << " " << p.until;
    os << "\n";
  }
  os.precision(precision);
}

std::string to_fault_plan_text(const FaultPlan& plan) {
  std::ostringstream os;
  write_fault_plan(os, plan);
  return os.str();
}

}  // namespace flb
