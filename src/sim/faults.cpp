#include "flb/sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "flb/util/error.hpp"
#include "flb/util/rng.hpp"

namespace flb {

namespace {

// Decorrelate the per-task, per-edge and per-burst-member fault streams
// from each other and from the plan seed. splitmix-style finalizer over a
// domain tag + index.
std::uint64_t mix(std::uint64_t seed, std::uint64_t domain,
                  std::uint64_t index) {
  std::uint64_t z = seed ^ (domain * 0x9e3779b97f4a7c15ULL) ^
                    (index + 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kTaskDomain = 1;
constexpr std::uint64_t kEdgeDomain = 2;
constexpr std::uint64_t kBurstDomain = 3;
constexpr std::uint64_t kCascadeDomain = 4;

bool finite_nonneg(Cost v) { return std::isfinite(v) && v >= 0.0; }

// Resolve one burst episode on `members`: each member participates with
// spec.probability and strikes at trigger + uniform[0, window]. The
// burst_index keys the deterministic per-member randomness, so primary and
// cascade episodes draw from disjoint streams.
void expand_burst(const FaultPlan& plan, const std::vector<ProcId>& members,
                  const DomainBurst& spec, Cost trigger,
                  std::uint64_t burst_index, ResolvedFaults& out) {
  for (std::size_t j = 0; j < members.size(); ++j) {
    Rng rng(mix(plan.seed, kBurstDomain,
                (burst_index << 32) | static_cast<std::uint64_t>(j)));
    if (spec.probability < 1.0 && !rng.bernoulli(spec.probability)) continue;
    Cost when = trigger;
    if (spec.window > 0.0) when += rng.uniform(0.0, spec.window);
    if (spec.slowdown_factor == 0.0) {
      out.failures.push_back({members[j], when});
    } else {
      out.slowdowns.push_back({members[j], when, spec.slowdown_factor});
    }
  }
}

}  // namespace

FaultPlan FaultPlan::single_failure(ProcId proc, Cost time) {
  FaultPlan plan;
  plan.failures.push_back({proc, time});
  return plan;
}

bool FaultPlan::trivial() const {
  return failures.empty() && slowdowns.empty() && bursts.empty() &&
         !checkpoint.enabled() && message.loss_probability == 0.0 &&
         message.delay_probability == 0.0 && runtime_spread == 0.0;
}

Cost FaultPlan::death_time(ProcId p) const {
  Cost earliest = kInfiniteTime;
  for (const ProcFailure& f : failures)
    if (f.proc == p && f.time < earliest) earliest = f.time;
  return earliest;
}

void FaultPlan::validate(ProcId num_procs) const {
  FLB_REQUIRE(message.loss_probability >= 0.0 &&
                  message.loss_probability <= 1.0,
              "FaultPlan: loss probability must be in [0, 1]");
  FLB_REQUIRE(message.delay_probability >= 0.0 &&
                  message.delay_probability <= 1.0,
              "FaultPlan: delay probability must be in [0, 1]");
  FLB_REQUIRE(message.delay_factor >= 1.0 &&
                  std::isfinite(message.delay_factor),
              "FaultPlan: delay factor must be finite and >= 1");
  FLB_REQUIRE(message.retry_timeout > 0.0 &&
                  std::isfinite(message.retry_timeout),
              "FaultPlan: retry timeout must be finite and positive");
  FLB_REQUIRE(message.backoff >= 1.0 && std::isfinite(message.backoff),
              "FaultPlan: backoff must be finite and >= 1");
  FLB_REQUIRE(runtime_spread >= 0.0 && runtime_spread < 1.0,
              "FaultPlan: runtime spread must be in [0, 1)");

  std::unordered_set<ProcId> failed;
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const ProcFailure& f = failures[i];
    const std::string where = "FaultPlan: failures[" + std::to_string(i) + "]";
    FLB_REQUIRE(f.proc < num_procs,
                where + " names processor " + std::to_string(f.proc) +
                    " but the machine has " + std::to_string(num_procs));
    FLB_REQUIRE(finite_nonneg(f.time),
                where + ": failure time must be finite and non-negative");
    FLB_REQUIRE(failed.insert(f.proc).second,
                where + " duplicates a failure of processor " +
                    std::to_string(f.proc));
  }

  for (std::size_t i = 0; i < slowdowns.size(); ++i) {
    const SlowdownFault& s = slowdowns[i];
    const std::string where =
        "FaultPlan: slowdowns[" + std::to_string(i) + "]";
    FLB_REQUIRE(s.proc < num_procs,
                where + " names processor " + std::to_string(s.proc) +
                    " but the machine has " + std::to_string(num_procs));
    FLB_REQUIRE(finite_nonneg(s.time),
                where + ": slowdown time must be finite and non-negative");
    FLB_REQUIRE(s.factor > 0.0 && s.factor <= 1.0 &&
                    std::isfinite(s.factor),
                where + ": slowdown factor must be in (0, 1]");
  }

  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const FailureDomain& d = domains[i];
    const std::string where = "FaultPlan: domains[" + std::to_string(i) + "]";
    FLB_REQUIRE(!d.name.empty(), where + " has an empty name");
    FLB_REQUIRE(names.insert(d.name).second,
                where + " duplicates domain name '" + d.name + "'");
    for (ProcId m : d.members)
      FLB_REQUIRE(m < num_procs,
                  where + " ('" + d.name + "') lists member processor " +
                      std::to_string(m) + " but the machine has " +
                      std::to_string(num_procs));
  }

  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const DomainBurst& b = bursts[i];
    const std::string where = "FaultPlan: bursts[" + std::to_string(i) + "]";
    FLB_REQUIRE(names.count(b.domain) != 0,
                where + " references unknown domain '" + b.domain + "'");
    FLB_REQUIRE(finite_nonneg(b.time),
                where + ": burst time must be finite and non-negative");
    FLB_REQUIRE(finite_nonneg(b.window),
                where + ": burst window must be finite and non-negative");
    FLB_REQUIRE(b.probability >= 0.0 && b.probability <= 1.0,
                where + ": participation probability must be in [0, 1]");
    FLB_REQUIRE(b.slowdown_factor == 0.0 ||
                    (b.slowdown_factor > 0.0 && b.slowdown_factor <= 1.0 &&
                     std::isfinite(b.slowdown_factor)),
                where + ": slowdown factor must be 0 (fail-stop) or in "
                        "(0, 1]");
    FLB_REQUIRE(b.cascade_probability >= 0.0 && b.cascade_probability <= 1.0,
                where + ": cascade probability must be in [0, 1]");
    FLB_REQUIRE(finite_nonneg(b.cascade_delay),
                where + ": cascade delay must be finite and non-negative");
  }

  FLB_REQUIRE(finite_nonneg(checkpoint.interval),
              "FaultPlan: checkpoint interval must be finite and "
              "non-negative");
  FLB_REQUIRE(finite_nonneg(checkpoint.overhead),
              "FaultPlan: checkpoint overhead must be finite and "
              "non-negative");
}

Cost ResolvedFaults::death_time(ProcId p) const {
  Cost earliest = kInfiniteTime;
  for (const ProcFailure& f : failures)
    if (f.proc == p && f.time < earliest) earliest = f.time;
  return earliest;
}

ResolvedFaults resolve_faults(const FaultPlan& plan) {
  ResolvedFaults out;
  out.failures = plan.failures;
  out.slowdowns = plan.slowdowns;

  std::unordered_map<std::string, std::size_t> by_name;
  for (std::size_t d = 0; d < plan.domains.size(); ++d)
    by_name.emplace(plan.domains[d].name, d);

  const std::uint64_t num_bursts = plan.bursts.size();
  const std::uint64_t num_domains = plan.domains.size();
  for (std::size_t i = 0; i < plan.bursts.size(); ++i) {
    const DomainBurst& b = plan.bursts[i];
    const std::size_t home = by_name.at(b.domain);
    expand_burst(plan, plan.domains[home].members, b, b.time, i, out);
    if (b.cascade_probability == 0.0) continue;
    // One bounded level of cascading: each *other* domain is hit by a
    // secondary burst with cascade_probability, triggered once the primary
    // window has passed. Synthetic burst indices keep the member draws of
    // primary and cascade episodes decorrelated.
    for (std::size_t d = 0; d < plan.domains.size(); ++d) {
      if (d == home) continue;
      Rng rng(mix(plan.seed, kCascadeDomain,
                  (static_cast<std::uint64_t>(i) << 32) |
                      static_cast<std::uint64_t>(d)));
      if (!rng.bernoulli(b.cascade_probability)) continue;
      expand_burst(plan, plan.domains[d].members, b,
                   b.time + b.window + b.cascade_delay,
                   num_bursts + i * num_domains + d, out);
    }
  }

  // Collapse repeated deaths of one processor to the earliest; sort both
  // lists so the resolved set is a canonical value.
  std::sort(out.failures.begin(), out.failures.end(),
            [](const ProcFailure& a, const ProcFailure& b) {
              return a.time != b.time ? a.time < b.time : a.proc < b.proc;
            });
  std::vector<ProcFailure> dedup;
  std::unordered_set<ProcId> seen;
  for (const ProcFailure& f : out.failures)
    if (seen.insert(f.proc).second) dedup.push_back(f);
  out.failures = std::move(dedup);
  std::sort(out.slowdowns.begin(), out.slowdowns.end(),
            [](const SlowdownFault& a, const SlowdownFault& b) {
              return a.time != b.time ? a.time < b.time : a.proc < b.proc;
            });
  return out;
}

std::vector<double> final_speeds(const ResolvedFaults& resolved,
                                 ProcId num_procs) {
  std::vector<double> speeds(num_procs, 1.0);
  for (const SlowdownFault& s : resolved.slowdowns)
    if (s.proc < num_procs) speeds[s.proc] *= s.factor;
  return speeds;
}

std::size_t checkpoint_count(const CheckpointPolicy& ckpt, Cost work) {
  if (!ckpt.enabled() || work <= ckpt.interval) return 0;
  return static_cast<std::size_t>(std::ceil(work / ckpt.interval)) - 1;
}

MessageOutcome resolve_message(const FaultPlan& plan, std::size_t edge_slot) {
  MessageOutcome out;
  const MessageFaults& m = plan.message;
  if (m.loss_probability == 0.0 && m.delay_probability == 0.0) return out;
  Rng rng(mix(plan.seed, kEdgeDomain, edge_slot));

  if (m.delay_probability > 0.0)
    out.delayed = rng.bernoulli(m.delay_probability);

  if (m.loss_probability > 0.0) {
    Cost timeout = m.retry_timeout;
    std::size_t attempt = 0;
    while (rng.bernoulli(m.loss_probability)) {
      if (attempt == m.max_retries) {
        out.dropped = true;
        return out;
      }
      out.retry_delay += timeout;
      timeout *= m.backoff;
      ++attempt;
      ++out.retries;
    }
  }
  return out;
}

Cost runtime_factor(const FaultPlan& plan, TaskId t) {
  if (plan.runtime_spread == 0.0) return 1.0;
  Rng rng(mix(plan.seed, kTaskDomain, t));
  return rng.uniform(1.0 - plan.runtime_spread, 1.0 + plan.runtime_spread);
}

}  // namespace flb
