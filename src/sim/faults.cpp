#include "flb/sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "flb/util/error.hpp"
#include "flb/util/rng.hpp"

namespace flb {

namespace {

// Decorrelate the per-task, per-edge and per-burst-member fault streams
// from each other and from the plan seed. splitmix-style finalizer over a
// domain tag + index.
std::uint64_t mix(std::uint64_t seed, std::uint64_t domain,
                  std::uint64_t index) {
  std::uint64_t z = seed ^ (domain * 0x9e3779b97f4a7c15ULL) ^
                    (index + 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kTaskDomain = 1;
constexpr std::uint64_t kEdgeDomain = 2;
constexpr std::uint64_t kBurstDomain = 3;
constexpr std::uint64_t kCascadeDomain = 4;

bool finite_nonneg(Cost v) { return std::isfinite(v) && v >= 0.0; }

// Resolve one burst episode on `members`: each member participates with
// spec.probability and strikes at trigger + uniform[0, window]. The
// burst_index keys the deterministic per-member randomness, so primary and
// cascade episodes draw from disjoint streams.
void expand_burst(const FaultPlan& plan, const std::vector<ProcId>& members,
                  const DomainBurst& spec, Cost trigger,
                  std::uint64_t burst_index, ResolvedFaults& out) {
  for (std::size_t j = 0; j < members.size(); ++j) {
    Rng rng(mix(plan.seed, kBurstDomain,
                (burst_index << 32) | static_cast<std::uint64_t>(j)));
    if (spec.probability < 1.0 && !rng.bernoulli(spec.probability)) continue;
    Cost when = trigger;
    if (spec.window > 0.0) when += rng.uniform(0.0, spec.window);
    const bool transient = spec.recovery_delay > 0.0;
    if (spec.slowdown_factor == 0.0) {
      out.failures.push_back({members[j], when});
      if (transient)
        out.rejoins.push_back({members[j], when + spec.recovery_delay});
    } else {
      out.slowdowns.push_back(
          {members[j], when, spec.slowdown_factor,
           transient ? when + spec.recovery_delay : kInfiniteTime});
    }
  }
}

// Canonicalize one processor's kill/rejoin events into alternating disjoint
// windows: walk them in time order (kills before rejoins at equal instants)
// keeping only state-changing events. Burst-induced strikes may legally
// collide with explicit windows; validation guarantees the *directly
// listed* events already alternate.
void canonicalize_windows(ResolvedFaults& out) {
  if (out.failures.empty()) {
    out.rejoins.clear();
    return;
  }
  struct Ev {
    Cost time;
    int kind;  // 0 = kill, 1 = rejoin
    ProcId proc;
  };
  std::vector<Ev> events;
  events.reserve(out.failures.size() + out.rejoins.size());
  for (const ProcFailure& f : out.failures) events.push_back({f.time, 0, f.proc});
  for (const ProcRejoin& r : out.rejoins) events.push_back({r.time, 1, r.proc});
  std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    return std::tie(a.proc, a.time, a.kind) < std::tie(b.proc, b.time, b.kind);
  });
  out.failures.clear();
  out.rejoins.clear();
  ProcId cur = kInvalidProc;
  bool dead = false;
  for (const Ev& e : events) {
    if (e.proc != cur) {
      cur = e.proc;
      dead = false;
    }
    if (e.kind == 0 && !dead) {
      out.failures.push_back({e.proc, e.time});
      dead = true;
    } else if (e.kind == 1 && dead) {
      out.rejoins.push_back({e.proc, e.time});
      dead = false;
    }
  }
  std::sort(out.failures.begin(), out.failures.end(),
            [](const ProcFailure& a, const ProcFailure& b) {
              return a.time != b.time ? a.time < b.time : a.proc < b.proc;
            });
  std::sort(out.rejoins.begin(), out.rejoins.end(),
            [](const ProcRejoin& a, const ProcRejoin& b) {
              return a.time != b.time ? a.time < b.time : a.proc < b.proc;
            });
}

}  // namespace

FaultPlan FaultPlan::single_failure(ProcId proc, Cost time) {
  FaultPlan plan;
  plan.failures.push_back({proc, time});
  return plan;
}

bool FaultPlan::trivial() const {
  return failures.empty() && rejoins.empty() && slowdowns.empty() &&
         bursts.empty() && partitions.empty() && !checkpoint.enabled() &&
         message.loss_probability == 0.0 &&
         message.delay_probability == 0.0 && runtime_spread == 0.0;
}

Cost FaultPlan::death_time(ProcId p) const {
  Cost earliest = kInfiniteTime;
  for (const ProcFailure& f : failures)
    if (f.proc == p && f.time < earliest) earliest = f.time;
  return earliest;
}

void FaultPlan::validate(ProcId num_procs) const {
  FLB_REQUIRE(message.loss_probability >= 0.0 &&
                  message.loss_probability <= 1.0,
              "FaultPlan: loss probability must be in [0, 1]");
  FLB_REQUIRE(message.delay_probability >= 0.0 &&
                  message.delay_probability <= 1.0,
              "FaultPlan: delay probability must be in [0, 1]");
  FLB_REQUIRE(message.delay_factor >= 1.0 &&
                  std::isfinite(message.delay_factor),
              "FaultPlan: delay factor must be finite and >= 1");
  FLB_REQUIRE(message.retry_timeout > 0.0 &&
                  std::isfinite(message.retry_timeout),
              "FaultPlan: retry timeout must be finite and positive");
  FLB_REQUIRE(message.backoff >= 1.0 && std::isfinite(message.backoff),
              "FaultPlan: backoff must be finite and >= 1");
  FLB_REQUIRE(runtime_spread >= 0.0 && runtime_spread < 1.0,
              "FaultPlan: runtime spread must be in [0, 1)");

  // Kill/rejoin windows: walk each processor's directly listed events in
  // time order (kills before rejoins at equal instants). A second failure
  // of a still-dead processor overlaps the open window; a rejoin needs an
  // open window that started strictly before it.
  struct KrEvent {
    Cost time;
    int kind;  // 0 = kill, 1 = rejoin
    std::size_t index;
  };
  std::map<ProcId, std::vector<KrEvent>> windows;

  for (std::size_t i = 0; i < failures.size(); ++i) {
    const ProcFailure& f = failures[i];
    const std::string where = "FaultPlan: failures[" + std::to_string(i) + "]";
    FLB_REQUIRE(f.proc < num_procs,
                where + " names processor " + std::to_string(f.proc) +
                    " but the machine has " + std::to_string(num_procs));
    FLB_REQUIRE(finite_nonneg(f.time),
                where + ": failure time must be finite and non-negative");
    windows[f.proc].push_back({f.time, 0, i});
  }

  for (std::size_t i = 0; i < rejoins.size(); ++i) {
    const ProcRejoin& r = rejoins[i];
    const std::string where = "FaultPlan: rejoins[" + std::to_string(i) + "]";
    FLB_REQUIRE(r.proc < num_procs,
                where + " names processor " + std::to_string(r.proc) +
                    " but the machine has " + std::to_string(num_procs));
    FLB_REQUIRE(finite_nonneg(r.time),
                where + ": rejoin time must be finite and non-negative");
    windows[r.proc].push_back({r.time, 1, i});
  }

  for (auto& [proc, events] : windows) {
    std::sort(events.begin(), events.end(),
              [](const KrEvent& a, const KrEvent& b) {
                return std::tie(a.time, a.kind) < std::tie(b.time, b.kind);
              });
    bool dead = false;
    Cost open_kill = 0.0;
    for (const KrEvent& e : events) {
      if (e.kind == 0) {
        FLB_REQUIRE(!dead,
                    "FaultPlan: failures[" + std::to_string(e.index) +
                        "] duplicates a failure of processor " +
                        std::to_string(proc) +
                        " inside a still-open kill/rejoin window");
        dead = true;
        open_kill = e.time;
      } else {
        const std::string where =
            "FaultPlan: rejoins[" + std::to_string(e.index) + "]";
        FLB_REQUIRE(dead, where + " rejoins processor " +
                              std::to_string(proc) +
                              " which has no preceding failure");
        FLB_REQUIRE(e.time > open_kill,
                    where + ": a rejoin must be strictly after the failure "
                            "it recovers from");
        dead = false;
      }
    }
  }

  for (std::size_t i = 0; i < slowdowns.size(); ++i) {
    const SlowdownFault& s = slowdowns[i];
    const std::string where =
        "FaultPlan: slowdowns[" + std::to_string(i) + "]";
    FLB_REQUIRE(s.proc < num_procs,
                where + " names processor " + std::to_string(s.proc) +
                    " but the machine has " + std::to_string(num_procs));
    FLB_REQUIRE(finite_nonneg(s.time),
                where + ": slowdown time must be finite and non-negative");
    FLB_REQUIRE(s.factor > 0.0 && s.factor <= 1.0 &&
                    std::isfinite(s.factor),
                where + ": slowdown factor must be in (0, 1]");
    FLB_REQUIRE(s.until == kInfiniteTime ||
                    (std::isfinite(s.until) && s.until > s.time),
                where + ": recovery instant `until` must be strictly after "
                        "the onset (or infinite for a permanent slowdown)");
  }

  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const FailureDomain& d = domains[i];
    const std::string where = "FaultPlan: domains[" + std::to_string(i) + "]";
    FLB_REQUIRE(!d.name.empty(), where + " has an empty name");
    FLB_REQUIRE(names.insert(d.name).second,
                where + " duplicates domain name '" + d.name + "'");
    for (ProcId m : d.members)
      FLB_REQUIRE(m < num_procs,
                  where + " ('" + d.name + "') lists member processor " +
                      std::to_string(m) + " but the machine has " +
                      std::to_string(num_procs));
  }

  for (std::size_t i = 0; i < bursts.size(); ++i) {
    const DomainBurst& b = bursts[i];
    const std::string where = "FaultPlan: bursts[" + std::to_string(i) + "]";
    FLB_REQUIRE(names.count(b.domain) != 0,
                where + " references unknown domain '" + b.domain + "'");
    FLB_REQUIRE(finite_nonneg(b.time),
                where + ": burst time must be finite and non-negative");
    FLB_REQUIRE(finite_nonneg(b.window),
                where + ": burst window must be finite and non-negative");
    FLB_REQUIRE(b.probability >= 0.0 && b.probability <= 1.0,
                where + ": participation probability must be in [0, 1]");
    FLB_REQUIRE(b.slowdown_factor == 0.0 ||
                    (b.slowdown_factor > 0.0 && b.slowdown_factor <= 1.0 &&
                     std::isfinite(b.slowdown_factor)),
                where + ": slowdown factor must be 0 (fail-stop) or in "
                        "(0, 1]");
    FLB_REQUIRE(b.cascade_probability >= 0.0 && b.cascade_probability <= 1.0,
                where + ": cascade probability must be in [0, 1]");
    FLB_REQUIRE(finite_nonneg(b.cascade_delay),
                where + ": cascade delay must be finite and non-negative");
    FLB_REQUIRE(finite_nonneg(b.recovery_delay),
                where + ": recovery delay must be finite and non-negative");
  }

  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const PartitionFault& p = partitions[i];
    const std::string where =
        "FaultPlan: partitions[" + std::to_string(i) + "]";
    for (const std::string* d : {&p.domain_a, &p.domain_b})
      if (!d->empty())
        FLB_REQUIRE(names.count(*d) != 0,
                    where + " references unknown domain '" + *d + "'");
    if (p.domain_a.empty())
      FLB_REQUIRE(p.proc_a < num_procs,
                  where + " names processor " + std::to_string(p.proc_a) +
                      " but the machine has " + std::to_string(num_procs));
    if (p.domain_b.empty())
      FLB_REQUIRE(p.proc_b < num_procs,
                  where + " names processor " + std::to_string(p.proc_b) +
                      " but the machine has " + std::to_string(num_procs));
    const bool self =
        (!p.domain_a.empty() || !p.domain_b.empty())
            ? (!p.domain_a.empty() && p.domain_a == p.domain_b)
            : p.proc_a == p.proc_b;
    FLB_REQUIRE(!self, where + ": the two endpoints must differ (a "
                               "processor cannot partition from itself)");
    FLB_REQUIRE(finite_nonneg(p.time),
                where + ": partition onset must be finite and non-negative");
    FLB_REQUIRE(p.until == kInfiniteTime ||
                    (std::isfinite(p.until) && p.until > p.time),
                where + ": heal instant `until` must be strictly after the "
                        "onset (or infinite for a permanent partition)");
  }

  FLB_REQUIRE(finite_nonneg(checkpoint.interval),
              "FaultPlan: checkpoint interval must be finite and "
              "non-negative");
  FLB_REQUIRE(finite_nonneg(checkpoint.overhead),
              "FaultPlan: checkpoint overhead must be finite and "
              "non-negative");
  FLB_REQUIRE(finite_nonneg(checkpoint.min_downstream),
              "FaultPlan: checkpoint min_downstream must be finite and "
              "non-negative");

  FLB_REQUIRE(finite_nonneg(heartbeat.period),
              "FaultPlan: heartbeat period must be finite and non-negative");
  FLB_REQUIRE(heartbeat.loss_probability >= 0.0 &&
                  heartbeat.loss_probability <= 1.0,
              "FaultPlan: heartbeat loss probability must be in [0, 1]");
  FLB_REQUIRE(heartbeat.delay_probability >= 0.0 &&
                  heartbeat.delay_probability <= 1.0,
              "FaultPlan: heartbeat delay probability must be in [0, 1]");
  FLB_REQUIRE(std::isfinite(heartbeat.delay_factor) &&
                  heartbeat.delay_factor >= 1.0,
              "FaultPlan: heartbeat delay factor must be finite and >= 1");
  FLB_REQUIRE(std::isfinite(heartbeat.suspect_after) &&
                  heartbeat.suspect_after > 0.0,
              "FaultPlan: heartbeat suspect threshold must be finite and "
              "positive");
  FLB_REQUIRE(std::isfinite(heartbeat.confirm_after) &&
                  heartbeat.confirm_after > heartbeat.suspect_after,
              "FaultPlan: heartbeat confirm threshold must be finite and "
              "strictly above the suspect threshold");
}

Cost ResolvedFaults::death_time(ProcId p) const {
  Cost earliest = kInfiniteTime;
  for (const ProcFailure& f : failures)
    if (f.proc == p && f.time < earliest) earliest = f.time;
  return earliest;
}

Cost ResolvedFaults::available_from(ProcId p) const {
  std::size_t kills = 0;
  for (const ProcFailure& f : failures)
    if (f.proc == p) ++kills;
  if (kills == 0) return 0.0;
  std::size_t recovered = 0;
  Cost last_rejoin = 0.0;
  for (const ProcRejoin& r : rejoins)
    if (r.proc == p) {
      ++recovered;
      last_rejoin = std::max(last_rejoin, r.time);
    }
  // Windows are canonical: alternating kill/rejoin, so the processor ends
  // the episode alive iff every kill window was closed.
  return recovered == kills ? last_rejoin : kInfiniteTime;
}

Cost ResolvedFaults::downtime(ProcId p, Cost horizon) const {
  // Canonical windows: the i-th kill of p pairs with the i-th rejoin of p
  // (both lists are time-sorted); an unpaired kill extends to the horizon.
  std::vector<Cost> kills, recoveries;
  for (const ProcFailure& f : failures)
    if (f.proc == p) kills.push_back(f.time);
  for (const ProcRejoin& r : rejoins)
    if (r.proc == p) recoveries.push_back(r.time);
  Cost total = 0.0;
  for (std::size_t i = 0; i < kills.size(); ++i) {
    const Cost begin = std::min(kills[i], horizon);
    const Cost end =
        i < recoveries.size() ? std::min(recoveries[i], horizon) : horizon;
    total += std::max(0.0, end - begin);
  }
  return total;
}

ResolvedFaults resolve_faults(const FaultPlan& plan) {
  ResolvedFaults out;
  out.failures = plan.failures;
  out.rejoins = plan.rejoins;
  out.slowdowns = plan.slowdowns;

  std::unordered_map<std::string, std::size_t> by_name;
  for (std::size_t d = 0; d < plan.domains.size(); ++d)
    by_name.emplace(plan.domains[d].name, d);

  const std::uint64_t num_bursts = plan.bursts.size();
  const std::uint64_t num_domains = plan.domains.size();
  for (std::size_t i = 0; i < plan.bursts.size(); ++i) {
    const DomainBurst& b = plan.bursts[i];
    const std::size_t home = by_name.at(b.domain);
    expand_burst(plan, plan.domains[home].members, b, b.time, i, out);
    if (b.cascade_probability == 0.0) continue;
    // One bounded level of cascading: each *other* domain is hit by a
    // secondary burst with cascade_probability, triggered once the primary
    // window has passed. Synthetic burst indices keep the member draws of
    // primary and cascade episodes decorrelated.
    for (std::size_t d = 0; d < plan.domains.size(); ++d) {
      if (d == home) continue;
      Rng rng(mix(plan.seed, kCascadeDomain,
                  (static_cast<std::uint64_t>(i) << 32) |
                      static_cast<std::uint64_t>(d)));
      if (!rng.bernoulli(b.cascade_probability)) continue;
      expand_burst(plan, plan.domains[d].members, b,
                   b.time + b.window + b.cascade_delay,
                   num_bursts + i * num_domains + d, out);
    }
  }

  // Collapse kill/rejoin events into canonical alternating windows (for a
  // rejoin-free plan this reduces to the old earliest-death dedup); sort all
  // lists so the resolved set is a canonical value.
  canonicalize_windows(out);
  std::sort(out.slowdowns.begin(), out.slowdowns.end(),
            [](const SlowdownFault& a, const SlowdownFault& b) {
              return a.time != b.time ? a.time < b.time : a.proc < b.proc;
            });
  return out;
}

std::vector<LinkOutage> resolve_partitions(const FaultPlan& plan) {
  std::unordered_map<std::string, std::size_t> by_name;
  for (std::size_t d = 0; d < plan.domains.size(); ++d)
    by_name.emplace(plan.domains[d].name, d);

  std::vector<LinkOutage> raw;
  for (const PartitionFault& p : plan.partitions) {
    std::vector<ProcId> side_a, side_b;
    if (p.domain_a.empty())
      side_a.push_back(p.proc_a);
    else
      side_a = plan.domains[by_name.at(p.domain_a)].members;
    if (p.domain_b.empty())
      side_b.push_back(p.proc_b);
    else
      side_b = plan.domains[by_name.at(p.domain_b)].members;
    for (ProcId a : side_a)
      for (ProcId b : side_b) {
        if (a == b) continue;  // overlapping domains: no self-link
        raw.push_back({std::min(a, b), std::max(a, b), p.time, p.until});
      }
  }

  std::sort(raw.begin(), raw.end(),
            [](const LinkOutage& x, const LinkOutage& y) {
              return std::tie(x.a, x.b, x.time, x.until) <
                     std::tie(y.a, y.b, y.time, y.until);
            });
  // Merge overlapping or touching windows of one link into maximal
  // disjoint windows, so the outage set is a canonical value.
  std::vector<LinkOutage> out;
  for (const LinkOutage& w : raw) {
    if (!out.empty() && out.back().a == w.a && out.back().b == w.b &&
        w.time <= out.back().until) {
      out.back().until = std::max(out.back().until, w.until);
    } else {
      out.push_back(w);
    }
  }
  return out;
}

bool link_partitioned(const std::vector<LinkOutage>& outages, ProcId x,
                      ProcId y, Cost t) {
  if (x == y) return false;
  const ProcId a = std::min(x, y), b = std::max(x, y);
  for (const LinkOutage& w : outages)
    if (w.a == a && w.b == b && t >= w.time && t < w.until) return true;
  return false;
}

bool path_connected(const std::vector<LinkOutage>& outages, ProcId num_procs,
                    ProcId x, ProcId y, Cost t) {
  return reroute_hops(outages, num_procs, x, y, t) > 0 || x == y;
}

std::size_t reroute_hops(const std::vector<LinkOutage>& outages,
                         ProcId num_procs, ProcId x, ProcId y, Cost t) {
  if (x == y) return 0;
  if (!link_partitioned(outages, x, y, t)) return 1;
  // Breadth-first search over the complement of the partitioned link set
  // (the machine is a clique; only cut links are missing).
  std::vector<std::size_t> dist(num_procs, 0);
  std::vector<ProcId> frontier{x};
  dist[x] = 1;  // 1 + hops, so 0 doubles as "unvisited"
  while (!frontier.empty()) {
    std::vector<ProcId> next;
    for (ProcId u : frontier)
      for (ProcId v = 0; v < num_procs; ++v) {
        if (dist[v] != 0 || link_partitioned(outages, u, v, t) || u == v)
          continue;
        dist[v] = dist[u] + 1;
        if (v == y) return dist[v] - 1;
        next.push_back(v);
      }
    frontier = std::move(next);
  }
  return 0;
}

std::vector<double> final_speeds(const ResolvedFaults& resolved,
                                 ProcId num_procs) {
  std::vector<double> speeds(num_procs, 1.0);
  for (const SlowdownFault& s : resolved.slowdowns)
    if (s.proc < num_procs && s.until == kInfiniteTime)
      speeds[s.proc] *= s.factor;
  return speeds;
}

std::size_t checkpoint_count(const CheckpointPolicy& ckpt, Cost work) {
  if (!ckpt.enabled() || work <= ckpt.interval) return 0;
  return static_cast<std::size_t>(std::ceil(work / ckpt.interval)) - 1;
}

MessageOutcome resolve_message(const FaultPlan& plan, std::size_t edge_slot) {
  MessageOutcome out;
  const MessageFaults& m = plan.message;
  if (m.loss_probability == 0.0 && m.delay_probability == 0.0) return out;
  Rng rng(mix(plan.seed, kEdgeDomain, edge_slot));

  if (m.delay_probability > 0.0)
    out.delayed = rng.bernoulli(m.delay_probability);

  if (m.loss_probability > 0.0) {
    Cost timeout = m.retry_timeout;
    std::size_t attempt = 0;
    while (rng.bernoulli(m.loss_probability)) {
      if (attempt == m.max_retries) {
        out.dropped = true;
        return out;
      }
      out.retry_delay += timeout;
      timeout *= m.backoff;
      ++attempt;
      ++out.retries;
    }
  }
  return out;
}

Cost runtime_factor(const FaultPlan& plan, TaskId t) {
  if (plan.runtime_spread == 0.0) return 1.0;
  Rng rng(mix(plan.seed, kTaskDomain, t));
  return rng.uniform(1.0 - plan.runtime_spread, 1.0 + plan.runtime_spread);
}

}  // namespace flb
