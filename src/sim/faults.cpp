#include "flb/sim/faults.hpp"

#include <cmath>
#include <string>

#include "flb/util/error.hpp"
#include "flb/util/rng.hpp"

namespace flb {

namespace {

// Decorrelate the per-task and per-edge fault streams from each other and
// from the plan seed. splitmix-style finalizer over a domain tag + index.
std::uint64_t mix(std::uint64_t seed, std::uint64_t domain,
                  std::uint64_t index) {
  std::uint64_t z = seed ^ (domain * 0x9e3779b97f4a7c15ULL) ^
                    (index + 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kTaskDomain = 1;
constexpr std::uint64_t kEdgeDomain = 2;

}  // namespace

FaultPlan FaultPlan::single_failure(ProcId proc, Cost time) {
  FaultPlan plan;
  plan.failures.push_back({proc, time});
  return plan;
}

bool FaultPlan::trivial() const {
  return failures.empty() && message.loss_probability == 0.0 &&
         message.delay_probability == 0.0 && runtime_spread == 0.0;
}

Cost FaultPlan::death_time(ProcId p) const {
  Cost earliest = kInfiniteTime;
  for (const ProcFailure& f : failures)
    if (f.proc == p && f.time < earliest) earliest = f.time;
  return earliest;
}

void FaultPlan::validate(ProcId num_procs) const {
  FLB_REQUIRE(message.loss_probability >= 0.0 &&
                  message.loss_probability <= 1.0,
              "FaultPlan: loss probability must be in [0, 1]");
  FLB_REQUIRE(message.delay_probability >= 0.0 &&
                  message.delay_probability <= 1.0,
              "FaultPlan: delay probability must be in [0, 1]");
  FLB_REQUIRE(message.delay_factor >= 1.0 &&
                  std::isfinite(message.delay_factor),
              "FaultPlan: delay factor must be finite and >= 1");
  FLB_REQUIRE(message.retry_timeout > 0.0 &&
                  std::isfinite(message.retry_timeout),
              "FaultPlan: retry timeout must be finite and positive");
  FLB_REQUIRE(message.backoff >= 1.0 && std::isfinite(message.backoff),
              "FaultPlan: backoff must be finite and >= 1");
  FLB_REQUIRE(runtime_spread >= 0.0 && runtime_spread < 1.0,
              "FaultPlan: runtime spread must be in [0, 1)");
  for (const ProcFailure& f : failures) {
    FLB_REQUIRE(f.proc < num_procs,
                "FaultPlan: failure names processor " +
                    std::to_string(f.proc) + " but the machine has " +
                    std::to_string(num_procs));
    FLB_REQUIRE(f.time >= 0.0 && std::isfinite(f.time),
                "FaultPlan: failure time must be finite and non-negative");
  }
}

MessageOutcome resolve_message(const FaultPlan& plan, std::size_t edge_slot) {
  MessageOutcome out;
  const MessageFaults& m = plan.message;
  if (m.loss_probability == 0.0 && m.delay_probability == 0.0) return out;
  Rng rng(mix(plan.seed, kEdgeDomain, edge_slot));

  if (m.delay_probability > 0.0)
    out.delayed = rng.bernoulli(m.delay_probability);

  if (m.loss_probability > 0.0) {
    Cost timeout = m.retry_timeout;
    std::size_t attempt = 0;
    while (rng.bernoulli(m.loss_probability)) {
      if (attempt == m.max_retries) {
        out.dropped = true;
        return out;
      }
      out.retry_delay += timeout;
      timeout *= m.backoff;
      ++attempt;
      ++out.retries;
    }
  }
  return out;
}

Cost runtime_factor(const FaultPlan& plan, TaskId t) {
  if (plan.runtime_spread == 0.0) return 1.0;
  Rng rng(mix(plan.seed, kTaskDomain, t));
  return rng.uniform(1.0 - plan.runtime_spread, 1.0 + plan.runtime_spread);
}

}  // namespace flb
