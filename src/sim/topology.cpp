#include "flb/sim/topology.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "flb/platform/cost_model.hpp"
#include "flb/util/error.hpp"

namespace flb {

Topology Topology::clique(ProcId nodes) {
  FLB_REQUIRE(nodes >= 1, "Topology::clique: at least one node");
  std::vector<std::pair<ProcId, ProcId>> links;
  for (ProcId a = 0; a < nodes; ++a)
    for (ProcId b = a + 1; b < nodes; ++b) links.emplace_back(a, b);
  return from_links(nodes, std::move(links));
}

Topology Topology::ring(ProcId nodes) {
  FLB_REQUIRE(nodes >= 1, "Topology::ring: at least one node");
  std::vector<std::pair<ProcId, ProcId>> links;
  for (ProcId a = 0; a + 1 < nodes; ++a) links.emplace_back(a, a + 1);
  if (nodes > 2) links.emplace_back(0, nodes - 1);
  return from_links(nodes, std::move(links));
}

Topology Topology::mesh2d(ProcId rows, ProcId cols) {
  FLB_REQUIRE(rows >= 1 && cols >= 1, "Topology::mesh2d: empty mesh");
  std::vector<std::pair<ProcId, ProcId>> links;
  auto id = [cols](ProcId r, ProcId c) { return r * cols + c; };
  for (ProcId r = 0; r < rows; ++r) {
    for (ProcId c = 0; c < cols; ++c) {
      if (c + 1 < cols) links.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) links.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return from_links(rows * cols, std::move(links));
}

Topology Topology::torus2d(ProcId rows, ProcId cols) {
  FLB_REQUIRE(rows >= 1 && cols >= 1, "Topology::torus2d: empty torus");
  std::vector<std::pair<ProcId, ProcId>> links;
  auto id = [cols](ProcId r, ProcId c) { return r * cols + c; };
  for (ProcId r = 0; r < rows; ++r) {
    for (ProcId c = 0; c < cols; ++c) {
      if (c + 1 < cols) links.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) links.emplace_back(id(r, c), id(r + 1, c));
    }
    if (cols > 2) links.emplace_back(id(r, 0), id(r, cols - 1));
  }
  if (rows > 2)
    for (ProcId c = 0; c < cols; ++c) links.emplace_back(id(0, c), id(rows - 1, c));
  return from_links(rows * cols, std::move(links));
}

Topology Topology::star(ProcId nodes) {
  FLB_REQUIRE(nodes >= 1, "Topology::star: at least one node");
  std::vector<std::pair<ProcId, ProcId>> links;
  for (ProcId leaf = 1; leaf < nodes; ++leaf) links.emplace_back(0, leaf);
  return from_links(nodes, std::move(links));
}

Topology Topology::from_links(ProcId nodes,
                              std::vector<std::pair<ProcId, ProcId>> links) {
  FLB_REQUIRE(nodes >= 1, "Topology: at least one node");
  Topology t;
  t.nodes_ = nodes;
  for (auto& [a, b] : links) {
    FLB_REQUIRE(a < nodes && b < nodes, "Topology: link endpoint out of range");
    FLB_REQUIRE(a != b, "Topology: self-links are not allowed");
    if (a > b) std::swap(a, b);
  }
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
  t.links_ = std::move(links);
  t.neighbours_.assign(nodes, {});
  for (const auto& [a, b] : t.links_) {
    t.neighbours_[a].push_back(b);
    t.neighbours_[b].push_back(a);
  }
  for (auto& nb : t.neighbours_) std::sort(nb.begin(), nb.end());
  t.build_routes();
  return t;
}

void Topology::build_routes() {
  const std::size_t n = nodes_;
  next_hop_.assign(n * n, kInvalidProc);
  hop_count_.assign(n * n, static_cast<std::size_t>(-1));

  // BFS from every destination so next_hop_[from][to] is the first step of
  // a shortest from->to path; neighbour lists are sorted, giving the
  // smallest-id tie-break.
  for (ProcId dest = 0; dest < nodes_; ++dest) {
    hop_count_[dest * n + dest] = 0;
    std::queue<ProcId> q;
    q.push(dest);
    while (!q.empty()) {
      ProcId cur = q.front();
      q.pop();
      for (ProcId nb : neighbours_[cur]) {
        if (hop_count_[nb * n + dest] != static_cast<std::size_t>(-1))
          continue;
        hop_count_[nb * n + dest] = hop_count_[cur * n + dest] + 1;
        next_hop_[nb * n + dest] = cur;
        q.push(nb);
      }
    }
  }
  for (ProcId a = 0; a < nodes_; ++a)
    for (ProcId b = 0; b < nodes_; ++b)
      FLB_REQUIRE(hop_count_[a * n + b] != static_cast<std::size_t>(-1),
                  "Topology: the network is not connected");
}

std::size_t Topology::hops(ProcId from, ProcId to) const {
  return hop_count_[from * nodes_ + to];
}

std::size_t Topology::link_index(ProcId a, ProcId b) const {
  if (a > b) std::swap(a, b);
  auto it = std::lower_bound(links_.begin(), links_.end(),
                             std::pair<ProcId, ProcId>(a, b));
  FLB_ASSERT(it != links_.end() && *it == std::make_pair(a, b));
  return static_cast<std::size_t>(it - links_.begin());
}

std::vector<std::size_t> Topology::route(ProcId from, ProcId to) const {
  std::vector<std::size_t> out(hops(from, to));
  route_into(from, to, out);
  return out;
}

std::size_t Topology::route_into(ProcId from, ProcId to,
                                 std::span<std::size_t> out) const {
  std::size_t filled = 0;
  ProcId cur = from;
  while (cur != to) {
    ProcId nxt = next_hop_[cur * nodes_ + to];
    FLB_ASSERT(filled < out.size());
    out[filled++] = link_index(cur, nxt);
    cur = nxt;
  }
  return filled;
}

std::size_t Topology::diameter() const {
  std::size_t d = 0;
  for (ProcId a = 0; a < nodes_; ++a)
    for (ProcId b = 0; b < nodes_; ++b) d = std::max(d, hops(a, b));
  return d;
}

namespace {

struct Event {
  Cost time;
  std::size_t seq;
  TaskId task;
  bool operator>(const Event& other) const {
    return std::tie(time, seq) > std::tie(other.time, other.seq);
  }
};

}  // namespace

TopologySimResult simulate_on_topology(const TaskGraph& g, const Schedule& s,
                                       const Topology& topology,
                                       Cost latency_factor,
                                       const std::vector<Cost>* work_override) {
  const TaskId n = g.num_tasks();
  FLB_REQUIRE(s.complete(), "simulate_on_topology: schedule is incomplete");
  FLB_REQUIRE(topology.num_nodes() == s.num_procs(),
              "simulate_on_topology: topology/schedule size mismatch");
  FLB_REQUIRE(latency_factor >= 0.0,
              "simulate_on_topology: latency factor must be non-negative");
  FLB_REQUIRE(work_override == nullptr || work_override->size() == n,
              "simulate_on_topology: work override must have one entry per "
              "task");
  auto work_of = [&](TaskId t) -> Cost {
    if (work_override != nullptr && (*work_override)[t] != kUndefinedTime)
      return (*work_override)[t];
    return g.comp(t);
  };

  TopologySimResult result;
  result.sim.start.assign(n, kUndefinedTime);
  result.sim.finish.assign(n, kUndefinedTime);

  const ProcId procs = s.num_procs();
  std::vector<std::size_t> dispatch_idx(procs, 0);
  std::vector<Cost> proc_free(procs, 0.0);
  // The store-and-forward network is the platform cost model's link-busy
  // variant: every remote transfer commits a reservation per hop of its
  // deterministic route, and later transfers crossing the same link queue
  // behind it.
  platform::CostModel net = platform::CostModel::link_busy(topology);
  net.set_latency_factor(latency_factor);

  std::vector<Cost> arrival(g.num_edges(), kUndefinedTime);
  std::vector<std::size_t> edge_offset(n + 1, 0);
  for (TaskId t = 0; t < n; ++t)
    edge_offset[t + 1] = edge_offset[t] + g.out_degree(t);
  auto arrival_slot = [&](TaskId pred, TaskId to) -> std::size_t {
    auto succs = g.successors(pred);
    for (std::size_t i = 0; i < succs.size(); ++i)
      if (succs[i].node == to) return edge_offset[pred] + i;
    FLB_ASSERT(false);
    return 0;
  };

  std::vector<bool> dispatched(n, false);
  std::vector<std::size_t> pending_preds(n);
  for (TaskId t = 0; t < n; ++t) pending_preds[t] = g.in_degree(t);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::size_t seq = 0;
  TaskId completed = 0;

  auto try_dispatch = [&](ProcId p) {
    while (dispatch_idx[p] < s.tasks_on(p).size()) {
      TaskId t = s.tasks_on(p)[dispatch_idx[p]];
      if (dispatched[t]) {
        ++dispatch_idx[p];
        continue;
      }
      if (pending_preds[t] > 0) return;
      Cost start = proc_free[p];
      for (const Adj& a : g.predecessors(t)) {
        if (s.proc(a.node) == p) {
          start = std::max(start, result.sim.finish[a.node]);
        } else {
          Cost arr = arrival[arrival_slot(a.node, t)];
          FLB_ASSERT(arr != kUndefinedTime);
          start = std::max(start, arr);
        }
      }
      dispatched[t] = true;
      result.sim.start[t] = start;
      result.sim.finish[t] = start + work_of(t);
      proc_free[p] = result.sim.finish[t];
      events.push({result.sim.finish[t], seq++, t});
      ++dispatch_idx[p];
    }
  };

  for (ProcId p = 0; p < procs; ++p) try_dispatch(p);

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    TaskId t = ev.task;
    ++completed;
    const ProcId p = s.proc(t);

    std::size_t slot = edge_offset[t];
    for (const Adj& a : g.successors(t)) {
      ProcId dest = s.proc(a.node);
      if (dest != p) {
        // Links serialize in global event order: commit the reservation
        // for every hop of the route and take the resulting arrival.
        arrival[slot] = net.commit(p, dest, a.comm, ev.time);
        ++result.sim.messages;
        result.sim.network_busy += net.message_cost(a.comm);
      }
      ++slot;
    }

    try_dispatch(p);
    for (const Adj& a : g.successors(t)) {
      FLB_ASSERT(pending_preds[a.node] > 0);
      if (--pending_preds[a.node] == 0) try_dispatch(s.proc(a.node));
    }
  }

  FLB_REQUIRE(completed == n,
              "simulate_on_topology: dispatch deadlock — per-processor "
              "order inconsistent with the task dependences");

  for (Cost f : result.sim.finish)
    result.sim.makespan = std::max(result.sim.makespan, f);
  result.total_hops = net.total_hops();
  result.max_link_busy = net.max_link_busy();
  result.total_link_busy = net.total_link_busy();
  return result;
}

}  // namespace flb
