#include "flb/sched/schedule.hpp"

#include <algorithm>
#include <string>

#include "flb/util/error.hpp"

namespace flb {

Schedule::Schedule(ProcId num_procs, TaskId num_tasks)
    : placements_(num_tasks), timelines_(num_procs), prt_(num_procs, 0.0) {
  FLB_REQUIRE(num_procs >= 1, "Schedule: at least one processor required");
}

void Schedule::reset(ProcId num_procs, TaskId num_tasks) {
  FLB_REQUIRE(num_procs >= 1, "Schedule: at least one processor required");
  placements_.resize(num_tasks);
  std::fill(placements_.begin(), placements_.end(), Placement{});
  // resize keeps the outer capacity when shrinking, and each surviving
  // timeline keeps its own buffer across clear(), so a same-shape reuse
  // touches the allocator zero times.
  timelines_.resize(num_procs);
  for (auto& timeline : timelines_) timeline.clear();
  prt_.resize(num_procs);
  std::fill(prt_.begin(), prt_.end(), 0.0);
  num_scheduled_ = 0;
}

void Schedule::assign(TaskId t, ProcId p, Cost start, Cost finish) {
  FLB_REQUIRE(t < placements_.size(), "Schedule::assign: task id out of range");
  FLB_REQUIRE(p < timelines_.size(),
              "Schedule::assign: processor id out of range");
  FLB_REQUIRE(!is_scheduled(t),
              "Schedule::assign: task " + std::to_string(t) +
                  " is already scheduled");
  FLB_REQUIRE(finish >= start, "Schedule::assign: finish precedes start");
  FLB_REQUIRE(start >= 0.0, "Schedule::assign: negative start time");

  auto& timeline = timelines_[p];
  // Position within the timeline, which is kept sorted by
  // (start, duration > 0): a zero-duration task coinciding with a positive
  // task's start sorts before it, so per-processor timeline order is
  // always a feasible execution order (the machine simulator replays it).
  const bool positive = finish > start;
  auto key = std::pair<Cost, bool>(start, positive);
  auto it = std::upper_bound(
      timeline.begin(), timeline.end(), key,
      [&](const std::pair<Cost, bool>& k, TaskId other) {
        const Placement& pl = placements_[other];
        return k < std::pair<Cost, bool>(pl.start, pl.finish > pl.start);
      });
  // Two executions conflict only when they share positive measure, so
  // zero-duration tasks (legal for zero-cost graph nodes) never overlap
  // anything and are skipped when locating the binding neighbours.
  if (finish > start) {
    for (auto left = it; left != timeline.begin();) {
      --left;
      const Placement& prev = placements_[*left];
      if (prev.finish <= prev.start) continue;  // zero-duration
      FLB_REQUIRE(prev.finish <= start,
                  "Schedule::assign: task " + std::to_string(t) +
                      " would overlap task " + std::to_string(*left) +
                      " on processor " + std::to_string(p));
      break;
    }
    for (auto right = it; right != timeline.end(); ++right) {
      const Placement& next = placements_[*right];
      if (next.finish <= next.start) continue;  // zero-duration
      FLB_REQUIRE(finish <= next.start,
                  "Schedule::assign: task " + std::to_string(t) +
                      " would overlap task " + std::to_string(*right) +
                      " on processor " + std::to_string(p));
      break;
    }
  }

  placements_[t] = {p, start, finish};
  timeline.insert(it, t);
  prt_[p] = std::max(prt_[p], finish);
  ++num_scheduled_;
}

Cost Schedule::earliest_gap(ProcId p, Cost earliest, Cost duration) const {
  FLB_REQUIRE(p < timelines_.size(),
              "Schedule::earliest_gap: processor id out of range");
  FLB_REQUIRE(duration >= 0.0,
              "Schedule::earliest_gap: negative duration");
  Cost candidate = std::max(earliest, 0.0);
  for (TaskId other : timelines_[p]) {
    const Placement& pl = placements_[other];
    if (pl.start >= candidate + duration) break;  // fits before `other`
    candidate = std::max(candidate, pl.finish);
  }
  return candidate;
}

Cost Schedule::makespan() const {
  Cost m = 0.0;
  for (Cost r : prt_) m = std::max(m, r);
  return m;
}

}  // namespace flb
