#include "flb/sched/hetero.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "flb/sim/faults.hpp"
#include "flb/util/error.hpp"

namespace flb {

namespace {

// Build the clique cost model the machine delegates to; validation happens
// here so the constructor can initialize the (non-default-constructible)
// model in its init list.
platform::CostModel hetero_model(std::vector<double> speeds) {
  FLB_REQUIRE(!speeds.empty(),
              "HeteroMachine: at least one processor required");
  for (double s : speeds)
    FLB_REQUIRE(s > 0.0, "HeteroMachine: speeds must be positive");
  platform::CostModel m =
      platform::CostModel::clique(static_cast<ProcId>(speeds.size()));
  m.set_speeds(std::move(speeds));
  return m;
}

}  // namespace

HeteroMachine::HeteroMachine(std::vector<double> speeds)
    : model_(hetero_model(std::move(speeds))) {
  for (ProcId p = 0; p < model_.num_procs(); ++p)
    if (model_.speed(p) != 1.0) {
      uniform_ = false;
      break;
    }
}

HeteroMachine HeteroMachine::uniform(ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1,
              "HeteroMachine: at least one processor required");
  return HeteroMachine(std::vector<double>(num_procs, 1.0));
}

std::vector<Violation> validate_hetero_schedule(const TaskGraph& g,
                                                const HeteroMachine& machine,
                                                const Schedule& s,
                                                double tolerance) {
  FLB_REQUIRE(machine.num_procs() == s.num_procs(),
              "validate_hetero_schedule: machine/schedule size mismatch");
  // Delegate everything except the duration rule to the homogeneous
  // validator by filtering its duration findings and re-checking them
  // against the speed-scaled expectation.
  std::vector<Violation> raw = validate_schedule(g, s, tolerance);
  std::vector<Violation> out;
  for (Violation& v : raw)
    if (v.kind != Violation::Kind::kWrongDuration) out.push_back(std::move(v));

  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!s.is_scheduled(t)) continue;  // already reported
    Cost expected = machine.exec_time(g.comp(t), s.proc(t));
    if (std::abs(s.finish(t) - (s.start(t) + expected)) > tolerance) {
      std::ostringstream os;
      os << "task " << t << ": finish " << s.finish(t) << " != start "
         << s.start(t) << " + comp " << g.comp(t) << " / speed "
         << machine.speed(s.proc(t));
      out.push_back({Violation::Kind::kWrongDuration, t, os.str()});
    }
  }
  return out;
}

bool is_valid_hetero_schedule(const TaskGraph& g, const HeteroMachine& machine,
                              const Schedule& s, double tolerance) {
  return validate_hetero_schedule(g, machine, s, tolerance).empty();
}

HeteroMachine degraded_machine(const FaultPlan& plan, ProcId num_procs) {
  plan.validate(num_procs);
  return HeteroMachine(final_speeds(resolve_faults(plan), num_procs));
}

}  // namespace flb
