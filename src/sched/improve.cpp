#include "flb/sched/improve.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "flb/algos/mapping.hpp"
#include "flb/util/error.hpp"
#include "flb/util/rng.hpp"

namespace flb {

ImproveResult improve_schedule(const TaskGraph& g, const Schedule& s,
                               const ImproveOptions& options) {
  FLB_REQUIRE(s.complete(), "improve_schedule: schedule is incomplete");
  const TaskId n = g.num_tasks();
  const ProcId procs = s.num_procs();

  std::vector<ProcId> assignment(n);
  for (TaskId t = 0; t < n; ++t) assignment[t] = s.proc(t);

  Schedule current = schedule_with_fixed_assignment(g, assignment, procs);
  ImproveResult result{std::move(current), 0.0, 0.0, 0, 1};
  result.initial_makespan = result.schedule.makespan();
  result.final_makespan = result.initial_makespan;
  if (procs == 1 || n == 0) return result;

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    // Sweep tasks in descending finish time of the current schedule: the
    // tasks closing out the makespan are the profitable movers.
    std::vector<TaskId> order(n);
    std::iota(order.begin(), order.end(), 0);
    // Total order: latest finish first, id as the tie-break — ties must
    // not land in unspecified order or the improvement pass (and every
    // digest downstream of it) flaps across STL implementations.
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      return std::make_tuple(result.schedule.finish(b), a) <
             std::make_tuple(result.schedule.finish(a), b);
    });

    bool improved_this_pass = false;
    for (TaskId t : order) {
      ProcId original = assignment[t];
      for (ProcId p = 0; p < procs; ++p) {
        if (p == original) continue;
        if (result.evaluations >= options.max_evaluations) break;
        assignment[t] = p;
        Schedule candidate =
            schedule_with_fixed_assignment(g, assignment, procs);
        ++result.evaluations;
        if (candidate.makespan() < result.final_makespan - 1e-12) {
          result.schedule = std::move(candidate);
          result.final_makespan = result.schedule.makespan();
          ++result.moves;
          improved_this_pass = true;
          original = p;  // accepted; keep climbing from here
        } else {
          assignment[t] = original;
        }
      }
      if (result.evaluations >= options.max_evaluations) break;
    }
    if (!improved_this_pass ||
        result.evaluations >= options.max_evaluations)
      break;
  }
  return result;
}

ImproveResult anneal_schedule(const TaskGraph& g, const Schedule& s,
                              const AnnealOptions& options) {
  FLB_REQUIRE(s.complete(), "anneal_schedule: schedule is incomplete");
  FLB_REQUIRE(options.initial_temp_fraction > 0.0,
              "anneal_schedule: temperature fraction must be positive");
  const TaskId n = g.num_tasks();
  const ProcId procs = s.num_procs();

  std::vector<ProcId> assignment(n);
  for (TaskId t = 0; t < n; ++t) assignment[t] = s.proc(t);

  Schedule current = schedule_with_fixed_assignment(g, assignment, procs);
  Cost current_len = current.makespan();
  ImproveResult result{std::move(current), current_len, current_len, 0, 1};
  if (procs == 1 || n == 0 || options.iterations == 0) return result;

  Rng rng(options.seed);
  const double t0 = options.initial_temp_fraction *
                    static_cast<double>(result.initial_makespan);
  // Geometric cooling down to t0 / 1000 across the run.
  const double alpha =
      std::pow(1e-3, 1.0 / static_cast<double>(options.iterations));
  double temp = t0;

  for (std::size_t it = 0; it < options.iterations; ++it, temp *= alpha) {
    TaskId t = static_cast<TaskId>(rng.next_below(n));
    ProcId old_p = assignment[t];
    ProcId new_p =
        static_cast<ProcId>(rng.next_below(procs - 1));
    if (new_p >= old_p) ++new_p;  // uniform over the other processors

    assignment[t] = new_p;
    Schedule candidate = schedule_with_fixed_assignment(g, assignment, procs);
    ++result.evaluations;
    Cost len = candidate.makespan();
    double delta = static_cast<double>(len - current_len);
    bool accept = delta <= 0.0 ||
                  rng.next_double() < std::exp(-delta / std::max(temp, 1e-12));
    if (accept) {
      current_len = len;
      ++result.moves;
      if (len < result.final_makespan - 1e-12) {
        result.final_makespan = len;
        result.schedule = std::move(candidate);
      }
    } else {
      assignment[t] = old_p;
    }
  }
  return result;
}

}  // namespace flb
