#include "flb/sched/tentative.hpp"

#include <algorithm>

#include "flb/util/error.hpp"

namespace flb {

Cost last_message_time(const TaskGraph& g, const Schedule& s, TaskId t) {
  Cost lmt = 0.0;
  for (const Adj& a : g.predecessors(t)) {
    FLB_ASSERT(s.is_scheduled(a.node));
    lmt = std::max(lmt, s.finish(a.node) + a.comm);
  }
  return lmt;
}

ProcId enabling_proc(const TaskGraph& g, const Schedule& s, TaskId t) {
  Cost lmt = -1.0;
  ProcId ep = kInvalidProc;
  for (const Adj& a : g.predecessors(t)) {
    FLB_ASSERT(s.is_scheduled(a.node));
    Cost arrival = s.finish(a.node) + a.comm;
    if (arrival > lmt) {
      lmt = arrival;
      ep = s.proc(a.node);
    }
  }
  return ep;
}

Cost effective_message_time(const TaskGraph& g, const Schedule& s, TaskId t,
                            ProcId p) {
  Cost emt = 0.0;
  for (const Adj& a : g.predecessors(t)) {
    FLB_ASSERT(s.is_scheduled(a.node));
    if (s.proc(a.node) == p) continue;
    emt = std::max(emt, s.finish(a.node) + a.comm);
  }
  return emt;
}

Cost est_start(const TaskGraph& g, const Schedule& s, TaskId t, ProcId p) {
  return std::max(effective_message_time(g, s, t, p), s.proc_ready_time(p));
}

bool is_ready(const TaskGraph& g, const Schedule& s, TaskId t) {
  if (s.is_scheduled(t)) return false;
  for (const Adj& a : g.predecessors(t))
    if (!s.is_scheduled(a.node)) return false;
  return true;
}

std::pair<ProcId, Cost> best_proc_exhaustive(const TaskGraph& g,
                                             const Schedule& s, TaskId t) {
  ProcId best_p = 0;
  Cost best_est = kInfiniteTime;
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    Cost e = est_start(g, s, t, p);
    if (e < best_est) {
      best_est = e;
      best_p = p;
    }
  }
  return {best_p, best_est};
}

}  // namespace flb
