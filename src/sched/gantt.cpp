#include "flb/sched/gantt.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>
#include <sstream>
#include <vector>

#include "flb/util/table.hpp"

namespace flb {

void write_gantt(std::ostream& os, const TaskGraph& g, const Schedule& s,
                 std::size_t columns) {
  (void)g;
  const Cost span = s.makespan();
  if (span <= 0.0 || columns < 10) {
    os << "(empty schedule)\n";
    return;
  }
  const double scale = static_cast<double>(columns) / span;

  auto col = [&](Cost t) {
    return static_cast<std::size_t>(
        std::min<double>(static_cast<double>(columns),
                         std::max(0.0, t * scale)));
  };

  for (ProcId p = 0; p < s.num_procs(); ++p) {
    std::string row(columns, '.');
    for (TaskId t : s.tasks_on(p)) {
      std::size_t a = col(s.start(t));
      std::size_t b = std::max(a + 1, col(s.finish(t)));
      b = std::min(b, columns);
      for (std::size_t i = a; i < b; ++i) row[i] = '#';
      // Built by append rather than operator+ to sidestep a GCC 12
      // -Wrestrict false positive on the char* + string&& overload.
      std::string label = "t";
      label += std::to_string(t);
      if (b - a >= label.size() + 2) {
        for (std::size_t i = 0; i < label.size(); ++i)
          row[a + 1 + i] = label[i];
      }
    }
    os << "P" << p << " |" << row << "|\n";
  }
  os << "     0";
  std::ostringstream tail;
  tail << format_compact(span);
  std::string right = tail.str();
  if (columns > right.size() + 1)
    os << std::string(columns - right.size() - 1, ' ') << right;
  os << "  (time)\n";
}

std::string to_gantt(const TaskGraph& g, const Schedule& s,
                     std::size_t columns) {
  std::ostringstream os;
  write_gantt(os, g, s, columns);
  return os.str();
}

void write_svg_gantt(std::ostream& os, const TaskGraph& g, const Schedule& s,
                     std::size_t width_px) {
  (void)g;
  static const char* kPalette[] = {"#4e79a7", "#f28e2b", "#59a14f",
                                   "#e15759", "#76b7b2", "#edc948",
                                   "#b07aa1", "#9c755f"};
  constexpr std::size_t kPaletteSize = sizeof kPalette / sizeof *kPalette;
  constexpr double kLaneHeight = 28.0;
  constexpr double kLaneGap = 6.0;
  constexpr double kLeftMargin = 48.0;
  constexpr double kTopMargin = 10.0;
  constexpr double kAxisHeight = 24.0;

  const Cost span = std::max(s.makespan(), 1e-12);
  const double w_px = static_cast<double>(width_px);
  const double scale = w_px / span;
  const double height = kTopMargin +
                        s.num_procs() * (kLaneHeight + kLaneGap) +
                        kAxisHeight;
  const double width = kLeftMargin + w_px + 16.0;

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" font-family=\"sans-serif\" "
     << "font-size=\"11\">\n";

  for (ProcId p = 0; p < s.num_procs(); ++p) {
    double y = kTopMargin + p * (kLaneHeight + kLaneGap);
    os << "  <text x=\"4\" y=\"" << y + kLaneHeight * 0.65 << "\">P" << p
       << "</text>\n";
    os << "  <rect x=\"" << kLeftMargin << "\" y=\"" << y << "\" width=\""
       << w_px << "\" height=\"" << kLaneHeight
       << "\" fill=\"#f2f2f2\"/>\n";
    for (TaskId t : s.tasks_on(p)) {
      double x = kLeftMargin + s.start(t) * scale;
      double w = std::max(1.0, (s.finish(t) - s.start(t)) * scale);
      os << "  <rect x=\"" << x << "\" y=\"" << y + 2 << "\" width=\"" << w
         << "\" height=\"" << kLaneHeight - 4 << "\" rx=\"3\" fill=\""
         << kPalette[t % kPaletteSize] << "\"><title>t" << t << " ["
         << format_compact(s.start(t)) << ", "
         << format_compact(s.finish(t)) << ")</title></rect>\n";
      if (w > 26.0) {
        os << "  <text x=\"" << x + 3 << "\" y=\""
           << y + kLaneHeight * 0.65 << "\" fill=\"#ffffff\">t" << t
           << "</text>\n";
      }
    }
  }

  // Time axis with ~8 round ticks.
  double axis_y = kTopMargin + s.num_procs() * (kLaneHeight + kLaneGap) + 4;
  os << "  <line x1=\"" << kLeftMargin << "\" y1=\"" << axis_y << "\" x2=\""
     << kLeftMargin + w_px << "\" y2=\"" << axis_y
     << "\" stroke=\"#888\"/>\n";
  for (int i = 0; i <= 8; ++i) {
    double tvalue = span * i / 8.0;
    double x = kLeftMargin + tvalue * scale;
    os << "  <line x1=\"" << x << "\" y1=\"" << axis_y << "\" x2=\"" << x
       << "\" y2=\"" << axis_y + 4 << "\" stroke=\"#888\"/>\n";
    os << "  <text x=\"" << x - 6 << "\" y=\"" << axis_y + 16 << "\">"
       << format_compact(tvalue) << "</text>\n";
  }
  os << "</svg>\n";
}

std::string to_svg_gantt(const TaskGraph& g, const Schedule& s,
                         std::size_t width_px) {
  std::ostringstream os;
  write_svg_gantt(os, g, s, width_px);
  return os.str();
}

void write_schedule_listing(std::ostream& os, const Schedule& s) {
  std::vector<TaskId> tasks;
  for (TaskId t = 0; t < s.num_tasks(); ++t)
    if (s.is_scheduled(t)) tasks.push_back(t);
  std::stable_sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
    return std::make_tuple(s.start(a), a) < std::make_tuple(s.start(b), b);
  });
  for (TaskId t : tasks) {
    os << "t" << t << " -> p" << s.proc(t) << ", [" << format_compact(s.start(t))
       << " - " << format_compact(s.finish(t)) << "]\n";
  }
}

}  // namespace flb
