#include "flb/sched/repair.hpp"

#include <algorithm>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/stopwatch.hpp"

namespace flb {

namespace {

// Degraded mode: place the remaining tasks in topological order, each on
// the surviving processor that lets it start the earliest (ties toward the
// smaller id); its duration is the speed-scaled remainder plus any additive
// extra. Pricing mirrors the exact mode of the resumed FLB engine: per-
// processor admission instants, cold-cache re-fetch of data that predates a
// reboot, and routed hop counts under a topology. O(V·P·indeg) — acceptable
// for a fallback that usually runs with one survivor.
void greedy_continuation(const TaskGraph& g, Schedule& s,
                         const std::vector<bool>& alive, Cost release,
                         const std::vector<double>& speeds,
                         const std::vector<Cost>& work,
                         const std::vector<Cost>& extra,
                         const std::vector<Cost>* proc_release,
                         const std::vector<Cost>* cold,
                         const Topology* topology) {
  for (TaskId t : topological_order(g)) {
    if (s.is_scheduled(t)) continue;
    ProcId best = kInvalidProc;
    Cost best_est = kInfiniteTime;
    for (ProcId p = 0; p < s.num_procs(); ++p) {
      if (!alive[p]) continue;
      Cost est = std::max(s.proc_ready_time(p), release);
      if (proc_release != nullptr) est = std::max(est, (*proc_release)[p]);
      for (const Adj& in : g.predecessors(t)) {
        Cost avail;
        if (s.proc(in.node) == p) {
          avail = s.finish(in.node);
          if (cold != nullptr && (*cold)[p] > 0.0 && avail <= (*cold)[p])
            avail = (*cold)[p] + in.comm;  // re-fetch: reboot dropped it
        } else {
          Cost comm = in.comm;
          if (topology != nullptr)
            comm *= static_cast<Cost>(topology->hops(s.proc(in.node), p));
          avail = s.finish(in.node) + comm;
        }
        est = std::max(est, avail);
      }
      if (est < best_est) {
        best_est = est;
        best = p;
      }
    }
    FLB_ASSERT(best != kInvalidProc);
    s.assign(t, best, best_est,
             best_est + work[t] / speeds[best] + extra[t]);
  }
}

}  // namespace

RepairResult repair_schedule(const TaskGraph& g, const Schedule& nominal,
                             const SimResult& partial, const FaultPlan& plan,
                             const RepairOptions& options) {
  const TaskId n = g.num_tasks();
  FLB_REQUIRE(nominal.num_tasks() == n,
              "repair_schedule: schedule was built for a different graph");
  FLB_REQUIRE(partial.start.size() == n && partial.finish.size() == n,
              "repair_schedule: partial run does not match the graph");
  FLB_REQUIRE(partial.dropped_messages == 0 ||
                  options.dropped_data ==
                      DroppedDataPolicy::kReexecuteProducers,
              "repair_schedule: the partial run dropped messages; lost data "
              "cannot be recovered by re-mapping tasks (use "
              "DroppedDataPolicy::kReexecuteProducers)");
  plan.validate(nominal.num_procs());
  const ResolvedFaults resolved = resolve_faults(plan);

  Stopwatch sw;
  RepairResult out{Schedule(nominal.num_procs(), n)};

  const ProcId procs = nominal.num_procs();
  FLB_REQUIRE(options.topology == nullptr ||
                  options.topology->num_nodes() == procs,
              "repair_schedule: topology node count must match the "
              "processor count");

  // Per-processor availability over the episode: 0 = never killed, finite
  // > 0 = killed but rejoined at that instant, infinite = ends dead.
  std::vector<Cost> avail(procs);
  bool any_recovery = false;
  for (ProcId p = 0; p < procs; ++p) {
    avail[p] = resolved.available_from(p);
    if (avail[p] > 0.0 && avail[p] != kInfiniteTime) any_recovery = true;
  }
  std::vector<bool> alive(procs);        // alive at the end of the episode
  std::vector<bool> never_killed(procs);
  for (ProcId p = 0; p < procs; ++p) {
    alive[p] = avail[p] != kInfiniteTime;
    never_killed[p] = avail[p] == 0.0;
  }
  Cost release = 0.0;
  for (const ProcFailure& f : resolved.failures)
    release = std::max(release, f.time);
  if (options.horizon != kInfiniteTime) {
    FLB_REQUIRE(options.horizon >= 0.0,
                "repair_schedule: horizon must be non-negative");
    release = std::max(release, options.horizon);
  }
  ProcId survivors = 0;
  for (bool a : alive)
    if (a) ++survivors;
  FLB_REQUIRE(survivors >= 1,
              "repair_schedule: the fault plan kills every processor");

  // The related-machines view of the degraded cluster: alive processors hit
  // by slowdowns execute remaining work at their compounded factor.
  const std::vector<double> speeds =
      final_speeds(resolved, nominal.num_procs());
  for (ProcId p = 0; p < nominal.num_procs(); ++p)
    if (alive[p] && speeds[p] < 1.0) ++out.degraded_procs;
  bool degraded = out.degraded_procs > 0;

  // Roll back the producers of permanently dropped messages plus all their
  // transitive successors — every task whose inputs are (directly or
  // indirectly) stale re-executes on a survivor. The repair cannot happen
  // before the losses were observed, so the release also covers the latest
  // observed finish of any rolled-back task.
  std::vector<char> rolled(n, 0);
  if (!partial.dropped_edges.empty()) {
    std::vector<TaskId> stack;
    for (const auto& [producer, consumer] : partial.dropped_edges) {
      (void)consumer;  // consumers are successors of the producer
      if (!rolled[producer]) {
        rolled[producer] = 1;
        stack.push_back(producer);
      }
    }
    while (!stack.empty()) {
      TaskId t = stack.back();
      stack.pop_back();
      for (const Adj& a : g.successors(t))
        if (!rolled[a.node]) {
          rolled[a.node] = 1;
          stack.push_back(a.node);
        }
    }
    for (TaskId t = 0; t < n; ++t)
      if (rolled[t] && partial.finish[t] != kUndefinedTime) {
        ++out.reexecuted_tasks;
        release = std::max(release, partial.finish[t]);
      }
  }

  // The executed past: everything that finished before the horizon and is
  // not rolled back keeps its observed placement — including tasks that
  // completed on a processor before it died.
  std::vector<char> fixed(n, 0);
  for (TaskId t = 0; t < n; ++t)
    if (partial.finish[t] != kUndefinedTime && !rolled[t] &&
        partial.start[t] < options.horizon) {
      fixed[t] = 1;
      out.schedule.assign(t, nominal.proc(t), partial.start[t],
                          partial.finish[t]);
    }
  out.migrated_tasks = n - out.schedule.num_scheduled();
  out.survivors = survivors;
  out.release_time = release;

  // Remaining work of every migrated task: its (deterministically
  // perturbed) total minus what its last durable checkpoint protects, plus
  // the wall time of the checkpoint writes the re-execution itself will
  // perform.
  std::vector<Cost> work(n, kUndefinedTime), extra(n, 0.0);
  for (TaskId t = 0; t < n; ++t) {
    if (fixed[t]) continue;
    Cost saved = partial.checkpointed.empty() ? 0.0 : partial.checkpointed[t];
    Cost remaining = g.comp(t) * runtime_factor(plan, t) - saved;
    work[t] = remaining;
    extra[t] = static_cast<Cost>(checkpoint_count(plan.checkpoint, remaining)) *
               plan.checkpoint.overhead;
    out.checkpoint_work_saved += saved;
  }

  // One continuation over a given admission mask. `recovery` additionally
  // admits rejoined processors from their rejoin instant with cold caches;
  // both variants price communication over options.topology when set.
  auto continuation = [&](const std::vector<bool>& mask, bool recovery)
      -> std::pair<Schedule, RepairStrategy> {
    ProcId admitted = 0;
    for (ProcId p = 0; p < procs; ++p)
      if (mask[p]) ++admitted;
    RepairStrategy strategy = options.strategy;
    if (strategy == RepairStrategy::kAuto)
      strategy = admitted >= 2 ? RepairStrategy::kFlbResume
                               : RepairStrategy::kGreedy;
    std::vector<Cost> proc_release, cold;
    if (recovery) {
      proc_release.assign(procs, release);
      cold.assign(procs, 0.0);
      for (ProcId p = 0; p < procs; ++p)
        if (mask[p] && avail[p] > 0.0 && avail[p] != kInfiniteTime) {
          proc_release[p] = std::max(release, avail[p]);
          cold[p] = avail[p];
        }
    }
    Schedule s = out.schedule;  // the fixed prefix
    if (strategy == RepairStrategy::kFlbResume) {
      FlbScheduler flb(options.flb);
      FlbResumeContext ctx;
      ctx.alive = mask;
      ctx.release = release;
      if (degraded) ctx.speeds = speeds;
      ctx.work = work;
      ctx.extra_time = extra;
      ctx.proc_release = proc_release;
      ctx.cold_before = cold;
      ctx.topology = options.topology;
      s = flb.resume(g, s, ctx);
    } else {
      greedy_continuation(g, s, mask, release, speeds, work, extra,
                          recovery ? &proc_release : nullptr,
                          recovery ? &cold : nullptr, options.topology);
    }
    return {std::move(s), strategy};
  };

  if (out.migrated_tasks > 0) {
    ProcId baseline_procs = 0;
    for (ProcId p = 0; p < procs; ++p)
      if (never_killed[p]) ++baseline_procs;
    if (baseline_procs == 0) {
      // Every processor was killed at least once; survivors >= 1
      // guarantees a rejoin, so the recovery continuation is the only
      // feasible repair regardless of options.give_back.
      auto [s, used] = continuation(alive, true);
      out.schedule = std::move(s);
      out.used = used;
    } else if (!options.give_back || !any_recovery) {
      auto [s, used] = continuation(never_killed, false);
      out.schedule = std::move(s);
      out.used = used;
    } else {
      // Opportunistic give-back: keep the strictly better of the
      // no-give-back baseline and the recovery-aware continuation, so the
      // repaired makespan is never worse than refusing the rejoins.
      auto [base, base_used] = continuation(never_killed, false);
      auto [rec, rec_used] = continuation(alive, true);
      if (rec.makespan() < base.makespan()) {
        out.schedule = std::move(rec);
        out.used = rec_used;
      } else {
        out.schedule = std::move(base);
        out.used = base_used;
      }
    }
  } else {
    RepairStrategy strategy = options.strategy;
    if (strategy == RepairStrategy::kAuto)
      strategy = survivors >= 2 ? RepairStrategy::kFlbResume
                                : RepairStrategy::kGreedy;
    out.used = strategy;
  }
  FLB_ASSERT(out.schedule.complete());

  // Recovery accounting against the continuation's makespan: downtime the
  // episode cost, capacity the rejoins handed back, and the migrated work
  // the chosen continuation actually placed on recovered processors.
  const Cost mk = out.schedule.makespan();
  for (ProcId p = 0; p < procs; ++p) {
    out.time_degraded += resolved.downtime(p, mk);
    if (avail[p] > 0.0 && avail[p] != kInfiniteTime) {
      ++out.recovered_procs;
      out.time_recovered += std::max(0.0, mk - avail[p]);
    }
  }
  for (TaskId t = 0; t < n; ++t) {
    const Cost a = avail[out.schedule.proc(t)];
    if (!fixed[t] && a > 0.0 && a != kInfiniteTime) {
      ++out.given_back_tasks;
      out.work_given_back += work[t];
    }
  }

  // Expected durations, computed independently of the placement engine so
  // the durations-aware validator is a real cross-check.
  out.durations.resize(n);
  for (TaskId t = 0; t < n; ++t)
    out.durations[t] =
        fixed[t] ? partial.finish[t] - partial.start[t]
                 : work[t] / speeds[out.schedule.proc(t)] + extra[t];

  out.repair_millis = sw.millis();
  return out;
}

}  // namespace flb
