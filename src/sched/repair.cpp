#include "flb/sched/repair.hpp"

#include <algorithm>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/stopwatch.hpp"

namespace flb {

namespace {

// Degraded mode: place the remaining tasks in topological order, each on
// the surviving processor that lets it start the earliest (ties toward the
// smaller id); its duration is the speed-scaled remainder plus any additive
// extra. O(V·P + E·P) — acceptable for a fallback that usually runs with
// one survivor.
void greedy_continuation(const TaskGraph& g, Schedule& s,
                         const std::vector<bool>& alive, Cost release,
                         const std::vector<double>& speeds,
                         const std::vector<Cost>& work,
                         const std::vector<Cost>& extra) {
  for (TaskId t : topological_order(g)) {
    if (s.is_scheduled(t)) continue;
    ProcId best = kInvalidProc;
    Cost best_est = kInfiniteTime;
    for (ProcId p = 0; p < s.num_procs(); ++p) {
      if (!alive[p]) continue;
      Cost est = std::max(s.proc_ready_time(p), release);
      for (const Adj& in : g.predecessors(t)) {
        Cost c = s.proc(in.node) == p ? 0.0 : in.comm;
        est = std::max(est, s.finish(in.node) + c);
      }
      if (est < best_est) {
        best_est = est;
        best = p;
      }
    }
    FLB_ASSERT(best != kInvalidProc);
    s.assign(t, best, best_est,
             best_est + work[t] / speeds[best] + extra[t]);
  }
}

}  // namespace

RepairResult repair_schedule(const TaskGraph& g, const Schedule& nominal,
                             const SimResult& partial, const FaultPlan& plan,
                             const RepairOptions& options) {
  const TaskId n = g.num_tasks();
  FLB_REQUIRE(nominal.num_tasks() == n,
              "repair_schedule: schedule was built for a different graph");
  FLB_REQUIRE(partial.start.size() == n && partial.finish.size() == n,
              "repair_schedule: partial run does not match the graph");
  FLB_REQUIRE(partial.dropped_messages == 0 ||
                  options.dropped_data ==
                      DroppedDataPolicy::kReexecuteProducers,
              "repair_schedule: the partial run dropped messages; lost data "
              "cannot be recovered by re-mapping tasks (use "
              "DroppedDataPolicy::kReexecuteProducers)");
  plan.validate(nominal.num_procs());
  const ResolvedFaults resolved = resolve_faults(plan);

  Stopwatch sw;
  RepairResult out{Schedule(nominal.num_procs(), n)};

  std::vector<bool> alive(nominal.num_procs(), true);
  Cost release = 0.0;
  for (const ProcFailure& f : resolved.failures) {
    alive[f.proc] = false;
    release = std::max(release, f.time);
  }
  if (options.horizon != kInfiniteTime) {
    FLB_REQUIRE(options.horizon >= 0.0,
                "repair_schedule: horizon must be non-negative");
    release = std::max(release, options.horizon);
  }
  ProcId survivors = 0;
  for (bool a : alive)
    if (a) ++survivors;
  FLB_REQUIRE(survivors >= 1,
              "repair_schedule: the fault plan kills every processor");

  // The related-machines view of the degraded cluster: alive processors hit
  // by slowdowns execute remaining work at their compounded factor.
  const std::vector<double> speeds =
      final_speeds(resolved, nominal.num_procs());
  for (ProcId p = 0; p < nominal.num_procs(); ++p)
    if (alive[p] && speeds[p] < 1.0) ++out.degraded_procs;
  bool degraded = out.degraded_procs > 0;

  // Roll back the producers of permanently dropped messages plus all their
  // transitive successors — every task whose inputs are (directly or
  // indirectly) stale re-executes on a survivor. The repair cannot happen
  // before the losses were observed, so the release also covers the latest
  // observed finish of any rolled-back task.
  std::vector<char> rolled(n, 0);
  if (!partial.dropped_edges.empty()) {
    std::vector<TaskId> stack;
    for (const auto& [producer, consumer] : partial.dropped_edges) {
      (void)consumer;  // consumers are successors of the producer
      if (!rolled[producer]) {
        rolled[producer] = 1;
        stack.push_back(producer);
      }
    }
    while (!stack.empty()) {
      TaskId t = stack.back();
      stack.pop_back();
      for (const Adj& a : g.successors(t))
        if (!rolled[a.node]) {
          rolled[a.node] = 1;
          stack.push_back(a.node);
        }
    }
    for (TaskId t = 0; t < n; ++t)
      if (rolled[t] && partial.finish[t] != kUndefinedTime) {
        ++out.reexecuted_tasks;
        release = std::max(release, partial.finish[t]);
      }
  }

  // The executed past: everything that finished before the horizon and is
  // not rolled back keeps its observed placement — including tasks that
  // completed on a processor before it died.
  std::vector<char> fixed(n, 0);
  for (TaskId t = 0; t < n; ++t)
    if (partial.finish[t] != kUndefinedTime && !rolled[t] &&
        partial.start[t] < options.horizon) {
      fixed[t] = 1;
      out.schedule.assign(t, nominal.proc(t), partial.start[t],
                          partial.finish[t]);
    }
  out.migrated_tasks = n - out.schedule.num_scheduled();
  out.survivors = survivors;
  out.release_time = release;

  // Remaining work of every migrated task: its (deterministically
  // perturbed) total minus what its last durable checkpoint protects, plus
  // the wall time of the checkpoint writes the re-execution itself will
  // perform.
  std::vector<Cost> work(n, kUndefinedTime), extra(n, 0.0);
  for (TaskId t = 0; t < n; ++t) {
    if (fixed[t]) continue;
    Cost saved = partial.checkpointed.empty() ? 0.0 : partial.checkpointed[t];
    Cost remaining = g.comp(t) * runtime_factor(plan, t) - saved;
    work[t] = remaining;
    extra[t] = static_cast<Cost>(checkpoint_count(plan.checkpoint, remaining)) *
               plan.checkpoint.overhead;
    out.checkpoint_work_saved += saved;
  }

  RepairStrategy strategy = options.strategy;
  if (strategy == RepairStrategy::kAuto)
    strategy = survivors >= 2 ? RepairStrategy::kFlbResume
                              : RepairStrategy::kGreedy;
  out.used = strategy;

  if (out.migrated_tasks > 0) {
    if (strategy == RepairStrategy::kFlbResume) {
      FlbScheduler flb(options.flb);
      FlbResumeContext ctx;
      ctx.alive = alive;
      ctx.release = release;
      if (degraded) ctx.speeds = speeds;
      ctx.work = work;
      ctx.extra_time = extra;
      out.schedule = flb.resume(g, out.schedule, ctx);
    } else {
      greedy_continuation(g, out.schedule, alive, release, speeds, work,
                          extra);
    }
  }
  FLB_ASSERT(out.schedule.complete());

  // Expected durations, computed independently of the placement engine so
  // the durations-aware validator is a real cross-check.
  out.durations.resize(n);
  for (TaskId t = 0; t < n; ++t)
    out.durations[t] =
        fixed[t] ? partial.finish[t] - partial.start[t]
                 : work[t] / speeds[out.schedule.proc(t)] + extra[t];

  out.repair_millis = sw.millis();
  return out;
}

}  // namespace flb
