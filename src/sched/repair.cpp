#include "flb/sched/repair.hpp"

#include <algorithm>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/stopwatch.hpp"

namespace flb {

namespace {

// Degraded mode: place the remaining tasks in topological order, each on
// the surviving processor that lets it start the earliest (ties toward the
// smaller id). O(V·P + E·P) — acceptable for a fallback that usually runs
// with one survivor.
void greedy_continuation(const TaskGraph& g, Schedule& s,
                         const std::vector<bool>& alive, Cost release) {
  for (TaskId t : topological_order(g)) {
    if (s.is_scheduled(t)) continue;
    ProcId best = kInvalidProc;
    Cost best_est = kInfiniteTime;
    for (ProcId p = 0; p < s.num_procs(); ++p) {
      if (!alive[p]) continue;
      Cost est = std::max(s.proc_ready_time(p), release);
      for (const Adj& in : g.predecessors(t)) {
        Cost c = s.proc(in.node) == p ? 0.0 : in.comm;
        est = std::max(est, s.finish(in.node) + c);
      }
      if (est < best_est) {
        best_est = est;
        best = p;
      }
    }
    FLB_ASSERT(best != kInvalidProc);
    s.assign(t, best, best_est, best_est + g.comp(t));
  }
}

}  // namespace

RepairResult repair_schedule(const TaskGraph& g, const Schedule& nominal,
                             const SimResult& partial, const FaultPlan& plan,
                             const RepairOptions& options) {
  const TaskId n = g.num_tasks();
  FLB_REQUIRE(nominal.num_tasks() == n,
              "repair_schedule: schedule was built for a different graph");
  FLB_REQUIRE(partial.start.size() == n && partial.finish.size() == n,
              "repair_schedule: partial run does not match the graph");
  FLB_REQUIRE(partial.dropped_messages == 0,
              "repair_schedule: the partial run dropped messages; lost data "
              "cannot be recovered by re-mapping tasks");
  plan.validate(nominal.num_procs());

  Stopwatch sw;
  RepairResult out{Schedule(nominal.num_procs(), n)};

  std::vector<bool> alive(nominal.num_procs(), true);
  Cost release = 0.0;
  for (const ProcFailure& f : plan.failures) {
    alive[f.proc] = false;
    release = std::max(release, f.time);
  }
  ProcId survivors = 0;
  for (bool a : alive)
    if (a) ++survivors;
  FLB_REQUIRE(survivors >= 1,
              "repair_schedule: the fault plan kills every processor");

  // The executed prefix: everything that actually finished keeps its
  // observed placement — including tasks that completed on a processor
  // before it died.
  for (TaskId t = 0; t < n; ++t)
    if (partial.finish[t] != kUndefinedTime)
      out.schedule.assign(t, nominal.proc(t), partial.start[t],
                          partial.finish[t]);
  out.migrated_tasks = n - out.schedule.num_scheduled();
  out.survivors = survivors;
  out.release_time = release;

  RepairStrategy strategy = options.strategy;
  if (strategy == RepairStrategy::kAuto)
    strategy = survivors >= 2 ? RepairStrategy::kFlbResume
                              : RepairStrategy::kGreedy;
  out.used = strategy;

  if (out.migrated_tasks > 0) {
    if (strategy == RepairStrategy::kFlbResume) {
      FlbScheduler flb(options.flb);
      out.schedule = flb.resume(g, out.schedule, alive, release);
    } else {
      greedy_continuation(g, out.schedule, alive, release);
    }
  }
  FLB_ASSERT(out.schedule.complete());
  out.repair_millis = sw.millis();
  return out;
}

}  // namespace flb
