#include "flb/sched/repair.hpp"

#include <algorithm>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/stopwatch.hpp"

namespace flb {

namespace {

// Degraded mode: place the remaining tasks in topological order, each on
// the surviving processor that lets it start the earliest (ties toward the
// smaller id); durations and arrivals are priced entirely through the
// platform cost model — per-processor admission instants, cold-cache
// re-fetch of data that predates a reboot, routed hop counts or link-busy
// reservations under a topology, speed-scaled remainders plus additive
// extra. Under link-busy pricing the chosen task's incoming routes are
// committed so later transfers queue behind them. O(V·P·indeg) —
// acceptable for a fallback that usually runs with one survivor.
void greedy_continuation(const TaskGraph& g, Schedule& s,
                         platform::CostModel& model) {
  const bool link_busy = model.mode() == platform::CommMode::kLinkBusy;
  for (TaskId t : topological_order(g)) {
    if (s.is_scheduled(t)) continue;
    ProcId best = kInvalidProc;
    Cost best_est = kInfiniteTime;
    for (ProcId p = 0; p < s.num_procs(); ++p) {
      if (!model.alive(p)) continue;
      Cost est = std::max(s.proc_ready_time(p), model.admission(p));
      for (const Adj& in : g.predecessors(t))
        est = std::max(est, model.arrival(s.proc(in.node), p, in.comm,
                                          s.finish(in.node)));
      if (est < best_est) {
        best_est = est;
        best = p;
      }
    }
    FLB_ASSERT(best != kInvalidProc);
    Cost start = best_est;
    if (link_busy) {
      start = std::max(s.proc_ready_time(best), model.admission(best));
      for (const Adj& in : g.predecessors(t))
        start = std::max(start,
                         model.commit_arrival(s.proc(in.node), best, in.comm,
                                              s.finish(in.node)));
    }
    s.assign(t, best, start, start + model.exec(g, t, best, 0.0));
  }
}

}  // namespace

RepairResult repair_schedule(const TaskGraph& g, const Schedule& nominal,
                             const SimResult& partial, const FaultPlan& plan,
                             const RepairOptions& options) {
  const TaskId n = g.num_tasks();
  FLB_REQUIRE(nominal.num_tasks() == n,
              "repair_schedule: schedule was built for a different graph");
  FLB_REQUIRE(partial.start.size() == n && partial.finish.size() == n,
              "repair_schedule: partial run does not match the graph");
  FLB_REQUIRE(partial.dropped_messages == 0 ||
                  options.dropped_data ==
                      DroppedDataPolicy::kReexecuteProducers,
              "repair_schedule: the partial run dropped messages; lost data "
              "cannot be recovered by re-mapping tasks (use "
              "DroppedDataPolicy::kReexecuteProducers)");
  plan.validate(nominal.num_procs());
  const ResolvedFaults resolved = resolve_faults(plan);

  Stopwatch sw;
  RepairResult out(Schedule(nominal.num_procs(), n));

  const ProcId procs = nominal.num_procs();
  FLB_REQUIRE(options.topology == nullptr ||
                  options.topology->num_nodes() == procs,
              "repair_schedule: topology node count must match the "
              "processor count");
  FLB_REQUIRE(!options.link_busy || options.topology != nullptr,
              "repair_schedule: link-busy pricing requires a topology");

  // Per-processor availability over the episode: 0 = never killed, finite
  // > 0 = killed but rejoined at that instant, infinite = ends dead.
  std::vector<Cost> avail(procs);
  bool any_recovery = false;
  for (ProcId p = 0; p < procs; ++p) {
    avail[p] = resolved.available_from(p);
    if (avail[p] > 0.0 && avail[p] != kInfiniteTime) any_recovery = true;
  }
  std::vector<bool> alive(procs);        // alive at the end of the episode
  std::vector<bool> never_killed(procs);
  for (ProcId p = 0; p < procs; ++p) {
    alive[p] = avail[p] != kInfiniteTime;
    never_killed[p] = avail[p] == 0.0;
  }
  Cost release = 0.0;
  for (const ProcFailure& f : resolved.failures)
    release = std::max(release, f.time);
  if (options.horizon != kInfiniteTime) {
    FLB_REQUIRE(options.horizon >= 0.0,
                "repair_schedule: horizon must be non-negative");
    release = std::max(release, options.horizon);
  }
  ProcId survivors = 0;
  for (bool a : alive)
    if (a) ++survivors;
  FLB_REQUIRE(survivors >= 1,
              "repair_schedule: the fault plan kills every processor");

  // Unreachable-but-alive processors: masked out of every admission set
  // below (the controller cannot install new work behind the partition)
  // without being treated as dead anywhere else.
  std::vector<char> unreachable(procs, 0);
  for (ProcId p : options.unreachable) {
    FLB_REQUIRE(p < procs,
                "repair_schedule: unreachable processor " +
                    std::to_string(p) + " is not below the processor count " +
                    std::to_string(procs));
    unreachable[p] = 1;
  }
  for (ProcId p = 0; p < procs; ++p)
    if (unreachable[p] != 0) ++out.unreachable_procs;
  {
    bool any_reachable = false;
    for (ProcId p = 0; p < procs; ++p)
      if (alive[p] && unreachable[p] == 0) any_reachable = true;
    FLB_REQUIRE(any_reachable,
                "repair_schedule: every surviving processor is unreachable "
                "from the controller");
  }
  auto reachable = [&](std::vector<bool> mask) {
    for (ProcId p = 0; p < procs; ++p)
      if (unreachable[p] != 0) mask[p] = false;
    return mask;
  };

  // The related-machines view of the degraded cluster: alive processors hit
  // by slowdowns execute remaining work at their compounded factor.
  const std::vector<double> speeds =
      final_speeds(resolved, nominal.num_procs());
  for (ProcId p = 0; p < nominal.num_procs(); ++p)
    if (alive[p] && speeds[p] < 1.0) ++out.degraded_procs;
  bool degraded = out.degraded_procs > 0;

  // Roll back the producers of permanently dropped messages plus all their
  // transitive successors — every task whose inputs are (directly or
  // indirectly) stale re-executes on a survivor. The repair cannot happen
  // before the losses were observed, so the release also covers the latest
  // observed finish of any rolled-back task.
  std::vector<char> rolled(n, 0);
  if (!partial.dropped_edges.empty()) {
    std::vector<TaskId> stack;
    for (const auto& [producer, consumer] : partial.dropped_edges) {
      (void)consumer;  // consumers are successors of the producer
      if (!rolled[producer]) {
        rolled[producer] = 1;
        stack.push_back(producer);
      }
    }
    while (!stack.empty()) {
      TaskId t = stack.back();
      stack.pop_back();
      for (const Adj& a : g.successors(t))
        if (!rolled[a.node]) {
          rolled[a.node] = 1;
          stack.push_back(a.node);
        }
    }
    for (TaskId t = 0; t < n; ++t)
      if (rolled[t] && partial.finish[t] != kUndefinedTime) {
        ++out.reexecuted_tasks;
        release = std::max(release, partial.finish[t]);
      }
  }

  // The executed past: everything that finished before the horizon and is
  // not rolled back keeps its observed placement — including tasks that
  // completed on a processor before it died.
  std::vector<char> fixed(n, 0);
  for (TaskId t = 0; t < n; ++t)
    if (partial.finish[t] != kUndefinedTime && !rolled[t] &&
        partial.start[t] < options.horizon) {
      fixed[t] = 1;
      out.schedule.assign(t, nominal.proc(t), partial.start[t],
                          partial.finish[t]);
    }
  out.survivors = survivors;
  out.release_time = release;

  // Remaining work of every migrated task: its (deterministically
  // perturbed) total minus what its last durable checkpoint protects, plus
  // the wall time of the checkpoint writes the re-execution itself will
  // perform. Under a criticality-aware policy (min_downstream > 0) tasks
  // below the bottom-level threshold neither saved anything nor pay for
  // writes — mirroring the simulator's per-task gating.
  std::vector<Cost> downstream;
  if (plan.checkpoint.enabled() && plan.checkpoint.min_downstream > 0.0)
    downstream = bottom_levels(g);
  std::vector<Cost> work(n, kUndefinedTime), extra(n, 0.0);
  for (TaskId t = 0; t < n; ++t) {
    if (fixed[t]) continue;
    const bool covered =
        downstream.empty() ? plan.checkpoint.enabled()
                           : plan.checkpoint.covers(downstream[t]);
    Cost saved = partial.checkpointed.empty() ? 0.0 : partial.checkpointed[t];
    Cost remaining = g.comp(t) * runtime_factor(plan, t) - saved;
    work[t] = remaining;
    if (covered)
      extra[t] =
          static_cast<Cost>(checkpoint_count(plan.checkpoint, remaining)) *
          plan.checkpoint.overhead;
    out.checkpoint_work_saved += saved;
  }

  // Speculative hedging: each suspect is listed dead in the plan — its
  // queue migrates below — but the belief may be wrong, so its first
  // still-in-flight task keeps its placement instead of restarting
  // elsewhere. The pin start is lifted to stay feasible against the fixed
  // prefix, with predecessor arrivals priced through the platform cost
  // model; a task later than the first unfinished one cannot have been in
  // flight (one task executes at a time), so only that one is hedged.
  //
  // Unreachable processors pin deeper: the controller cannot talk to a
  // processor behind a partition, so it can neither hand it new work nor
  // cancel the queue it already holds — the whole not-yet-started tail of
  // its dispatch list keeps executing in place, as far as its inputs stay
  // within the fixed-or-pinned prefix. The first input that a re-planned
  // producer would have to feed ends the pin run: from there on the tasks
  // migrate like any other re-planned work. A processor that is both
  // suspected and unreachable keeps the suspect semantics (one hedge).
  std::vector<ProcId> hedged = options.suspects;
  for (ProcId p = 0; p < procs; ++p)
    if (unreachable[p] != 0 &&
        std::find(hedged.begin(), hedged.end(), p) == hedged.end())
      hedged.push_back(p);
  if (!hedged.empty()) {
    FLB_REQUIRE(options.pin_exclude == nullptr ||
                    options.pin_exclude->size() == n,
                "repair_schedule: pin_exclude must have one entry per task");
    platform::CostModel probe =
        options.topology == nullptr
            ? platform::CostModel::clique(procs)
            : platform::CostModel::routed(*options.topology);
    for (ProcId sp : hedged) {
      FLB_REQUIRE(sp < procs,
                  "repair_schedule: suspect " + std::to_string(sp) +
                      " is not below the processor count " +
                      std::to_string(procs));
      const bool whole_queue =
          unreachable[sp] != 0 &&
          std::find(options.suspects.begin(), options.suspects.end(), sp) ==
              options.suspects.end();
      for (TaskId t : nominal.tasks_on(sp)) {
        if (fixed[t]) continue;
        if (rolled[t]) break;  // stale inputs: known re-execution, not hedge
        if (!whole_queue && nominal.start(t) >= options.horizon)
          break;  // never in flight
        if (options.pin_exclude != nullptr && (*options.pin_exclude)[t])
          break;  // observed killed: known-lost, nothing to hedge
        bool preds_placed = true;
        Cost start =
            std::max(nominal.start(t), out.schedule.proc_ready_time(sp));
        for (const Adj& in : g.predecessors(t)) {
          if (!fixed[in.node] && !out.schedule.is_scheduled(in.node)) {
            preds_placed = false;
            break;
          }
          start = std::max(
              start, probe.arrival(out.schedule.proc(in.node), sp, in.comm,
                                   out.schedule.finish(in.node)));
        }
        if (!preds_placed) break;
        out.schedule.assign(t, sp, start,
                            start + work[t] / speeds[sp] + extra[t]);
        out.pinned_tasks.push_back(t);
        if (!whole_queue) break;
      }
    }
  }
  out.migrated_tasks = n - out.schedule.num_scheduled();

  // One continuation over a given admission mask. `recovery` additionally
  // admits rejoined processors from their rejoin instant with cold caches
  // (the Availability::recovery rule); both variants price communication
  // through the platform cost model over options.topology when set,
  // reservation-aware when options.link_busy.
  struct Continuation {
    Schedule schedule;
    RepairStrategy used;
    std::vector<platform::LinkOccupancy> occupancies;
  };
  auto continuation = [&](const std::vector<bool>& mask,
                          bool recovery) -> Continuation {
    ProcId admitted = 0;
    for (ProcId p = 0; p < procs; ++p)
      if (mask[p]) ++admitted;
    RepairStrategy strategy = options.strategy;
    if (strategy == RepairStrategy::kAuto)
      strategy = admitted >= 2 ? RepairStrategy::kFlbResume
                               : RepairStrategy::kGreedy;
    platform::Availability a;
    if (recovery) {
      a = platform::Availability::recovery(release, mask, avail);
    } else {
      a.release = release;
      a.alive = mask;
    }
    Schedule s = out.schedule;  // the fixed prefix
    std::vector<platform::LinkOccupancy> occ;
    if (strategy == RepairStrategy::kFlbResume) {
      FlbScheduler flb(options.flb);
      FlbResumeContext ctx;
      ctx.alive = mask;
      ctx.release = release;
      if (degraded) ctx.speeds = speeds;
      ctx.work = work;
      ctx.extra_time = extra;
      ctx.proc_release = a.proc_release;
      ctx.cold_before = a.cold_before;
      ctx.topology = options.topology;
      ctx.link_busy = options.link_busy;
      ctx.occupancy_log = options.link_busy ? &occ : nullptr;
      s = flb.resume(g, s, ctx);
    } else {
      platform::CostModel model =
          options.topology == nullptr
              ? platform::CostModel::clique(procs)
              : (options.link_busy
                     ? platform::CostModel::link_busy(*options.topology)
                     : platform::CostModel::routed(*options.topology));
      model.set_availability(std::move(a));
      if (degraded) model.set_speeds(speeds);
      model.set_work(work);
      model.set_extra_time(extra);
      greedy_continuation(g, s, model);
      occ = model.occupancies();
    }
    return {std::move(s), strategy, std::move(occ)};
  };

  if (out.migrated_tasks > 0) {
    ProcId baseline_procs = 0;
    for (ProcId p = 0; p < procs; ++p)
      if (never_killed[p] && unreachable[p] == 0) ++baseline_procs;
    if (baseline_procs == 0) {
      // Every reachable processor was killed at least once; a reachable
      // survivor is guaranteed above, so the recovery continuation is the
      // only feasible repair regardless of options.give_back.
      Continuation c = continuation(reachable(alive), true);
      out.schedule = std::move(c.schedule);
      out.used = c.used;
      out.link_occupancies = std::move(c.occupancies);
    } else if (!options.give_back || !any_recovery) {
      Continuation c = continuation(reachable(never_killed), false);
      out.schedule = std::move(c.schedule);
      out.used = c.used;
      out.link_occupancies = std::move(c.occupancies);
    } else {
      // Opportunistic give-back: keep the strictly better of the
      // no-give-back baseline and the recovery-aware continuation, so the
      // repaired makespan is never worse than refusing the rejoins.
      Continuation base = continuation(reachable(never_killed), false);
      Continuation rec = continuation(reachable(alive), true);
      Continuation& chosen =
          rec.schedule.makespan() < base.schedule.makespan() ? rec : base;
      out.schedule = std::move(chosen.schedule);
      out.used = chosen.used;
      out.link_occupancies = std::move(chosen.occupancies);
    }
  } else {
    RepairStrategy strategy = options.strategy;
    if (strategy == RepairStrategy::kAuto)
      strategy = survivors >= 2 ? RepairStrategy::kFlbResume
                                : RepairStrategy::kGreedy;
    out.used = strategy;
  }
  FLB_ASSERT(out.schedule.complete());

  // Recovery accounting against the continuation's makespan: downtime the
  // episode cost, capacity the rejoins handed back, and the migrated work
  // the chosen continuation actually placed on recovered processors.
  const Cost mk = out.schedule.makespan();
  for (ProcId p = 0; p < procs; ++p) {
    out.time_degraded += resolved.downtime(p, mk);
    if (avail[p] > 0.0 && avail[p] != kInfiniteTime) {
      ++out.recovered_procs;
      out.time_recovered += std::max(0.0, mk - avail[p]);
    }
  }
  for (TaskId t = 0; t < n; ++t) {
    const Cost a = avail[out.schedule.proc(t)];
    if (!fixed[t] && a > 0.0 && a != kInfiniteTime) {
      ++out.given_back_tasks;
      out.work_given_back += work[t];
    }
  }

  // Expected durations, computed independently of the placement engine so
  // the durations-aware validator is a real cross-check.
  out.durations.resize(n);
  for (TaskId t = 0; t < n; ++t)
    out.durations[t] =
        fixed[t] ? partial.finish[t] - partial.start[t]
                 : work[t] / speeds[out.schedule.proc(t)] + extra[t];

  out.repair_millis = sw.millis();
  return out;
}

}  // namespace flb
