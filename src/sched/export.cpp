#include "flb/sched/export.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "flb/util/error.hpp"

namespace flb {

namespace {

// JSON-safe number formatting: plain decimal with enough precision to
// round-trip a double.
void number(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

}  // namespace

void write_schedule_json(std::ostream& os, const TaskGraph& g,
                         const Schedule& s) {
  os << "{\"graph\":\"" << g.name() << "\",\"procs\":" << s.num_procs()
     << ",\"tasks_total\":" << g.num_tasks() << ",\"makespan\":";
  number(os, s.makespan());
  os << ",\"tasks\":[";
  bool first = true;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!s.is_scheduled(t)) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << t << ",\"proc\":" << s.proc(t) << ",\"start\":";
    number(os, s.start(t));
    os << ",\"finish\":";
    number(os, s.finish(t));
    os << ",\"comp\":";
    number(os, g.comp(t));
    os << "}";
  }
  os << "]}";
}

void write_chrome_trace(std::ostream& os, const TaskGraph& g,
                        const Schedule& s) {
  os << "[";
  bool first = true;
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    for (TaskId t : s.tasks_on(p)) {
      if (!first) os << ",\n";
      first = false;
      os << "{\"name\":\"t" << t << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << p
         << ",\"ts\":";
      number(os, s.start(t) * 1e6);
      os << ",\"dur\":";
      number(os, (s.finish(t) - s.start(t)) * 1e6);
      os << ",\"args\":{\"comp\":";
      number(os, g.comp(t));
      os << "}}";
    }
  }
  os << "]\n";
}

void write_schedule_text(std::ostream& os, const Schedule& s) {
  os << "flb-schedule 1\n";
  os << "procs " << s.num_procs() << "\n";
  os << "tasks " << s.num_tasks() << "\n";
  os.precision(17);
  for (TaskId t = 0; t < s.num_tasks(); ++t) {
    if (!s.is_scheduled(t)) continue;
    os << "a " << t << " " << s.proc(t) << " " << s.start(t) << " "
       << s.finish(t) << "\n";
  }
}

namespace {

bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Schedule read_schedule_text(std::istream& is) {
  std::string line;
  FLB_REQUIRE(next_line(is, line), "read_schedule_text: empty input");
  {
    std::istringstream ls(line);
    std::string magic;
    int version = 0;
    ls >> magic >> version;
    FLB_REQUIRE(magic == "flb-schedule" && version == 1,
                "read_schedule_text: bad magic line '" + line + "'");
  }
  std::size_t procs = 0, tasks = 0;
  bool have_procs = false, have_tasks = false;
  while (!(have_procs && have_tasks)) {
    FLB_REQUIRE(next_line(is, line), "read_schedule_text: truncated header");
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "procs") {
      FLB_REQUIRE(static_cast<bool>(ls >> procs) && procs >= 1,
                  "read_schedule_text: malformed procs line");
      have_procs = true;
    } else if (key == "tasks") {
      FLB_REQUIRE(static_cast<bool>(ls >> tasks),
                  "read_schedule_text: malformed tasks line");
      have_tasks = true;
    } else {
      FLB_REQUIRE(false,
                  "read_schedule_text: unexpected header line '" + line + "'");
    }
  }

  Schedule s(static_cast<ProcId>(procs), static_cast<TaskId>(tasks));
  while (next_line(is, line)) {
    std::istringstream ls(line);
    std::string key;
    std::size_t task = 0, proc = 0;
    double start = 0.0, finish = 0.0;
    FLB_REQUIRE(
        static_cast<bool>(ls >> key >> task >> proc >> start >> finish) &&
            key == "a",
        "read_schedule_text: malformed assignment line '" + line + "'");
    FLB_REQUIRE(task < tasks, "read_schedule_text: task id out of range");
    FLB_REQUIRE(proc < procs,
                "read_schedule_text: processor id out of range");
    s.assign(static_cast<TaskId>(task), static_cast<ProcId>(proc), start,
             finish);
  }
  return s;
}

std::string to_schedule_text(const Schedule& s) {
  std::ostringstream os;
  write_schedule_text(os, s);
  return os.str();
}

Schedule schedule_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_schedule_text(is);
}

std::string to_schedule_json(const TaskGraph& g, const Schedule& s) {
  std::ostringstream os;
  write_schedule_json(os, g, s);
  return os.str();
}

std::string to_chrome_trace(const TaskGraph& g, const Schedule& s) {
  std::ostringstream os;
  write_chrome_trace(os, g, s);
  return os.str();
}

}  // namespace flb
