#include "flb/sched/metrics.hpp"

#include <algorithm>

#include "flb/graph/properties.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/util/error.hpp"

namespace flb {

Cost speedup(const TaskGraph& g, const Schedule& s) {
  Cost m = s.makespan();
  if (m <= 0.0) return 0.0;
  return g.total_comp() / m;
}

Cost efficiency(const TaskGraph& g, const Schedule& s) {
  return speedup(g, s) / static_cast<Cost>(s.num_procs());
}

Cost normalized_schedule_length(Cost makespan, Cost reference_makespan) {
  FLB_REQUIRE(reference_makespan > 0.0,
              "normalized_schedule_length: reference must be positive");
  return makespan / reference_makespan;
}

Cost busy_time(const TaskGraph& g, const Schedule& s, ProcId p) {
  Cost sum = 0.0;
  for (TaskId t : s.tasks_on(p)) sum += g.comp(t);
  return sum;
}

Cost load_imbalance(const TaskGraph& g, const Schedule& s) {
  Cost max_busy = 0.0, total_busy = 0.0;
  ProcId used = 0;
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    Cost b = busy_time(g, s, p);
    if (b > 0.0) ++used;
    total_busy += b;
    max_busy = std::max(max_busy, b);
  }
  if (used == 0 || total_busy == 0.0) return 0.0;
  Cost mean_busy = total_busy / static_cast<Cost>(used);
  return max_busy / mean_busy;
}

Cost makespan_lower_bound(const TaskGraph& g, ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "makespan_lower_bound: P must be positive");
  Cost avg = g.total_comp() / static_cast<Cost>(num_procs);
  return std::max(computation_critical_path(g), avg);
}

RobustnessMetrics robustness_metrics(const Schedule& nominal,
                                     const SimResult& faulty,
                                     const RepairResult& repair) {
  RobustnessMetrics m;
  m.nominal_makespan = nominal.makespan();
  m.repaired_makespan = repair.schedule.makespan();
  m.degradation_ratio = m.nominal_makespan > 0.0
                            ? m.repaired_makespan / m.nominal_makespan
                            : 0.0;
  m.work_lost = faulty.work_lost;
  m.work_saved = faulty.work_saved;
  m.checkpoint_overhead = faulty.checkpoint_overhead;
  m.dead_proc_idle = faulty.dead_proc_idle;
  m.migrated_tasks = repair.migrated_tasks;
  m.reexecuted_tasks = repair.reexecuted_tasks;
  m.degraded_procs = repair.degraded_procs;
  m.retries = faulty.retries;
  m.repair_millis = repair.repair_millis;
  m.recovered_procs = repair.recovered_procs;
  m.time_degraded = repair.time_degraded;
  m.time_recovered = repair.time_recovered;
  m.given_back_tasks = repair.given_back_tasks;
  m.work_given_back = repair.work_given_back;
  return m;
}

RobustnessMetrics robustness_metrics(const Schedule& nominal,
                                     const SimResult& faulty,
                                     const RepairResult& repair,
                                     const FaultPlan& plan) {
  RobustnessMetrics m = robustness_metrics(nominal, faulty, repair);
  const ProcId procs = nominal.num_procs();
  const ResolvedFaults resolved = resolve_faults(plan);
  const std::vector<double> speeds = final_speeds(resolved, procs);
  for (const FailureDomain& d : plan.domains) {
    DomainImpact impact;
    impact.name = d.name;
    impact.members = static_cast<ProcId>(d.members.size());
    for (ProcId p : d.members) {
      if (resolved.death_time(p) != kInfiniteTime) {
        ++impact.killed;
      } else if (speeds[p] < 1.0) {
        ++impact.throttled;
      }
      if (!faulty.proc_work_lost.empty())
        impact.work_lost += faulty.proc_work_lost[p];
    }
    m.domains.push_back(std::move(impact));
  }
  return m;
}

}  // namespace flb
