#include "flb/sched/scheduler.hpp"

#include "flb/algos/dls.hpp"
#include "flb/algos/etf.hpp"
#include "flb/algos/etf_lookahead.hpp"
#include "flb/algos/fcp.hpp"
#include "flb/algos/hlfet.hpp"
#include "flb/algos/ish.hpp"
#include "flb/algos/llb.hpp"
#include "flb/algos/mcp.hpp"
#include "flb/core/flb.hpp"
#include "flb/util/error.hpp"

namespace flb {

std::vector<std::string> scheduler_names() {
  // Canonical paper order (Fig. 4 legend).
  return {"MCP", "ETF", "DSC-LLB", "FCP", "FLB"};
}

std::vector<std::string> extended_scheduler_names() {
  // The paper's five plus the additional baselines this library ships:
  // HLFET (classic static-level list scheduling), DLS (Sih & Lee),
  // MCP-I (Wu & Gajski's original insertion-based MCP), ISH (Kruatrachue
  // & Lewis's insertion heuristic).
  return {"MCP",   "ETF", "DSC-LLB", "FCP", "FLB",
          "HLFET", "DLS", "MCP-I",   "ISH", "ETF-LA"};
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          std::uint64_t seed) {
  if (name == "FLB") {
    FlbOptions options;
    options.seed = seed;
    return std::make_unique<FlbScheduler>(options);
  }
  if (name == "ETF") return std::make_unique<EtfScheduler>();
  if (name == "ETF-LA") return std::make_unique<EtfLookaheadScheduler>();
  if (name == "MCP") return std::make_unique<McpScheduler>(seed);
  if (name == "MCP-I")
    return std::make_unique<McpScheduler>(seed, /*insertion=*/true);
  if (name == "FCP") return std::make_unique<FcpScheduler>();
  if (name == "DSC-LLB") return std::make_unique<DscLlbScheduler>();
  if (name == "DLS") return std::make_unique<DlsScheduler>();
  if (name == "HLFET") return std::make_unique<HlfetScheduler>();
  if (name == "ISH") return std::make_unique<IshScheduler>();
  FLB_REQUIRE(false, "make_scheduler: unknown algorithm '" + name + "'");
}

}  // namespace flb
