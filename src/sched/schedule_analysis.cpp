#include "flb/sched/schedule_analysis.hpp"

#include <algorithm>

#include "flb/util/error.hpp"

namespace flb {

std::vector<TaskBinding> classify_bindings(const TaskGraph& g,
                                           const Schedule& s,
                                           double tolerance) {
  FLB_REQUIRE(s.complete(), "classify_bindings: schedule is incomplete");
  const TaskId n = g.num_tasks();
  std::vector<TaskBinding> out(n);

  // Previous task on each processor's timeline.
  std::vector<TaskId> prev_on_proc(n, kInvalidTask);
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    auto tasks = s.tasks_on(p);
    for (std::size_t i = 1; i < tasks.size(); ++i)
      prev_on_proc[tasks[i]] = tasks[i - 1];
  }

  for (TaskId t = 0; t < n; ++t) {
    const ProcId p = s.proc(t);

    Cost proc_avail = 0.0;
    TaskId prev = prev_on_proc[t];
    if (prev != kInvalidTask) proc_avail = s.finish(prev);

    Cost data_ready = 0.0;
    TaskId data_blocker = kInvalidTask;
    bool data_remote = false;
    for (const Adj& a : g.predecessors(t)) {
      bool remote = s.proc(a.node) != p;
      Cost arrival = s.finish(a.node) + (remote ? a.comm : 0.0);
      // '>=' so ties prefer remote blockers reported last... keep first
      // maximal arrival deterministically, preferring the remote one when
      // arrivals tie (the message is the costlier constraint).
      if (arrival > data_ready + tolerance ||
          (arrival > data_ready - tolerance && remote && !data_remote)) {
        data_ready = std::max(data_ready, arrival);
        data_blocker = a.node;
        data_remote = remote;
      }
    }

    Cost bound = std::max(proc_avail, data_ready);
    if (s.start(t) > bound + tolerance) {
      out[t] = {Binding::kSlack, kInvalidTask};
    } else if (bound <= tolerance) {
      out[t] = {Binding::kEntry, kInvalidTask};
    } else if (data_ready >= proc_avail - tolerance &&
               data_blocker != kInvalidTask &&
               data_ready >= bound - tolerance) {
      out[t] = {data_remote ? Binding::kRemoteData : Binding::kLocalData,
                data_blocker};
    } else {
      out[t] = {Binding::kProcessor, prev};
    }
  }
  return out;
}

std::vector<TaskId> critical_chain(const TaskGraph& g, const Schedule& s,
                                   double tolerance) {
  std::vector<TaskBinding> bindings = classify_bindings(g, s, tolerance);
  // Latest-finishing task (smallest id on ties for determinism).
  TaskId cur = kInvalidTask;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (cur == kInvalidTask || s.finish(t) > s.finish(cur)) cur = t;

  std::vector<TaskId> chain;
  while (cur != kInvalidTask) {
    chain.push_back(cur);
    cur = bindings[cur].blocker;
    FLB_ASSERT(chain.size() <= g.num_tasks());  // blockers cannot cycle
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

UtilizationReport analyze_utilization(const TaskGraph& g, const Schedule& s,
                                      double tolerance) {
  UtilizationReport r;
  r.makespan = s.makespan();
  r.busy_per_proc.assign(s.num_procs(), 0.0);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    r.busy_per_proc[s.proc(t)] += g.comp(t);
  if (r.makespan > 0.0) {
    double sum = 0.0;
    for (Cost b : r.busy_per_proc) sum += b / r.makespan;
    r.mean_utilization = sum / static_cast<double>(s.num_procs());
  }

  std::vector<TaskBinding> bindings = classify_bindings(g, s, tolerance);
  std::size_t counted = 0, proc = 0, local = 0, remote = 0, slack = 0;
  for (const TaskBinding& b : bindings) {
    if (b.binding == Binding::kEntry) continue;
    ++counted;
    switch (b.binding) {
      case Binding::kProcessor: ++proc; break;
      case Binding::kLocalData: ++local; break;
      case Binding::kRemoteData: ++remote; break;
      case Binding::kSlack: ++slack; break;
      case Binding::kEntry: break;
    }
  }
  if (counted > 0) {
    double denom = static_cast<double>(counted);
    r.processor_bound = static_cast<double>(proc) / denom;
    r.local_data_bound = static_cast<double>(local) / denom;
    r.remote_data_bound = static_cast<double>(remote) / denom;
    r.slack_bound = static_cast<double>(slack) / denom;
  }
  return r;
}

const char* to_string(Binding binding) {
  switch (binding) {
    case Binding::kEntry: return "entry";
    case Binding::kProcessor: return "processor";
    case Binding::kLocalData: return "local-data";
    case Binding::kRemoteData: return "remote-data";
    case Binding::kSlack: return "slack";
  }
  return "?";
}

}  // namespace flb
