#include "flb/sched/validator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

#include "flb/platform/cost_model.hpp"
#include "flb/sim/topology.hpp"
#include "flb/util/error.hpp"

namespace flb {

std::vector<Violation> validate_schedule(const TaskGraph& g, const Schedule& s,
                                         double tolerance) {
  std::vector<Violation> out;
  const TaskId n = g.num_tasks();

  auto report = [&](Violation::Kind kind, TaskId t, std::string detail) {
    out.push_back({kind, t, std::move(detail)});
  };

  // Tasks whose times are NaN or infinite are reported once here and then
  // excluded from the interval checks below: every comparison against a NaN
  // is false (a silent pass), and NaN starts would break the strict weak
  // ordering the overlap sweep sorts by.
  std::vector<char> finite(n, 1);

  // Per-task checks.
  for (TaskId t = 0; t < n; ++t) {
    if (!s.is_scheduled(t)) {
      report(Violation::Kind::kUnscheduledTask, t,
             "task " + std::to_string(t) + " was never scheduled");
      continue;
    }
    const Placement& pl = s.placement(t);
    if (!std::isfinite(pl.start) || !std::isfinite(pl.finish)) {
      std::ostringstream os;
      os << "task " << t << " has non-finite times: start " << pl.start
         << ", finish " << pl.finish;
      report(Violation::Kind::kNonFiniteTime, t, os.str());
      finite[t] = 0;
      continue;
    }
    if (pl.start < -tolerance) {
      std::ostringstream os;
      os << "task " << t << " starts at negative time " << pl.start;
      report(Violation::Kind::kNegativeStart, t, os.str());
    }
    if (std::abs(pl.finish - (pl.start + g.comp(t))) > tolerance) {
      std::ostringstream os;
      os << "task " << t << ": finish " << pl.finish << " != start "
         << pl.start << " + comp " << g.comp(t);
      report(Violation::Kind::kWrongDuration, t, os.str());
    }
  }

  // Per-processor exclusivity: sort each processor's tasks by start, then
  // sweep with a running maximum finish. Two executions conflict only when
  // they share positive measure, so zero-duration tasks neither trigger
  // nor mask an overlap; tracking the running maximum (rather than just
  // the previous task) also catches a long task engulfing a later short
  // one. We deliberately re-sort rather than trust the Schedule's order.
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    auto span = s.tasks_on(p);
    std::vector<TaskId> tasks;
    for (TaskId t : span)
      if (finite[t]) tasks.push_back(t);
    std::sort(tasks.begin(), tasks.end(), [&](TaskId a, TaskId b) {
      return std::make_tuple(s.start(a), a) < std::make_tuple(s.start(b), b);
    });
    Cost max_finish = -kInfiniteTime;
    TaskId max_task = kInvalidTask;
    for (TaskId cur : tasks) {
      bool zero_duration = s.finish(cur) <= s.start(cur) + tolerance;
      if (!zero_duration && s.start(cur) < max_finish - tolerance) {
        std::ostringstream os;
        os << "tasks " << max_task << " and " << cur
           << " overlap on processor " << p << ": [" << s.start(max_task)
           << ", " << s.finish(max_task) << ") vs [" << s.start(cur) << ", "
           << s.finish(cur) << ")";
        report(Violation::Kind::kProcessorOverlap, cur, os.str());
      }
      if (s.finish(cur) > max_finish) {
        max_finish = s.finish(cur);
        max_task = cur;
      }
    }
  }

  // Precedence + communication: ST(t) >= FT(pred) (+ comm if remote).
  for (TaskId t = 0; t < n; ++t) {
    if (!s.is_scheduled(t) || !finite[t]) continue;
    for (const Adj& a : g.predecessors(t)) {
      // Unscheduled / non-finite predecessors were already reported above.
      if (!s.is_scheduled(a.node) || !finite[a.node]) continue;
      Cost arrival = s.finish(a.node) +
                     (s.proc(a.node) == s.proc(t) ? 0.0 : a.comm);
      if (s.start(t) < arrival - tolerance) {
        std::ostringstream os;
        os << "task " << t << " starts at " << s.start(t)
           << " before data from predecessor " << a.node << " arrives at "
           << arrival << " (pred finish " << s.finish(a.node) << ", comm "
           << a.comm << ", " << (s.proc(a.node) == s.proc(t) ? "same" : "remote")
           << " processor)";
        report(Violation::Kind::kPrecedence, t, os.str());
      }
    }
  }

  return out;
}

std::vector<Violation> validate_schedule(const TaskGraph& g, const Schedule& s,
                                         const std::vector<Cost>& durations,
                                         double tolerance) {
  FLB_REQUIRE(durations.size() == g.num_tasks(),
              "validate_schedule: durations must have one entry per task");
  // Delegate everything except the duration rule to the homogeneous check,
  // then re-verify durations against the caller's expectations.
  std::vector<Violation> raw = validate_schedule(g, s, tolerance);
  std::vector<Violation> out;
  for (Violation& v : raw)
    if (v.kind != Violation::Kind::kWrongDuration) out.push_back(std::move(v));

  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!s.is_scheduled(t)) continue;  // already reported
    if (durations[t] == kUndefinedTime) continue;
    const Placement& pl = s.placement(t);
    if (!std::isfinite(pl.start) || !std::isfinite(pl.finish)) continue;
    if (std::abs(pl.finish - (pl.start + durations[t])) > tolerance) {
      std::ostringstream os;
      os << "task " << t << ": finish " << pl.finish << " != start "
         << pl.start << " + expected duration " << durations[t];
      out.push_back({Violation::Kind::kWrongDuration, t, os.str()});
    }
  }
  return out;
}

bool is_valid_schedule(const TaskGraph& g, const Schedule& s,
                       double tolerance) {
  return validate_schedule(g, s, tolerance).empty();
}

bool is_valid_schedule(const TaskGraph& g, const Schedule& s,
                       const std::vector<Cost>& durations, double tolerance) {
  return validate_schedule(g, s, durations, tolerance).empty();
}

std::vector<Violation> validate_link_occupancies(
    const Topology& topology,
    const std::vector<platform::LinkOccupancy>& occupancies,
    double tolerance) {
  std::vector<Violation> out;
  const std::size_t links = topology.num_links();

  // Malformed entries are reported once and excluded from the sweep (NaN
  // endpoints would break the sort's ordering, bad link indices the
  // grouping).
  std::vector<char> usable(occupancies.size(), 1);
  for (std::size_t i = 0; i < occupancies.size(); ++i) {
    const platform::LinkOccupancy& o = occupancies[i];
    std::ostringstream os;
    if (o.link >= links) {
      os << "occupancy " << i << " names link " << o.link
         << " but the topology has only " << links;
    } else if (!std::isfinite(o.begin) || !std::isfinite(o.end)) {
      os << "occupancy " << i << " on link " << o.link
         << " has non-finite endpoints: [" << o.begin << ", " << o.end << ")";
    } else if (o.end < o.begin - tolerance) {
      os << "occupancy " << i << " on link " << o.link
         << " ends at " << o.end << " before it begins at " << o.begin;
    } else {
      continue;
    }
    out.push_back({Violation::Kind::kLinkBusyViolation, kInvalidTask,
                   os.str()});
    usable[i] = 0;
  }

  // Per-link exclusivity: sort each link's reservations by begin, sweep
  // with a running maximum end. Zero-length occupancies carry no measure
  // and neither trigger nor mask a conflict — same convention as the
  // processor-overlap sweep.
  std::vector<std::vector<std::size_t>> by_link(links);
  for (std::size_t i = 0; i < occupancies.size(); ++i)
    if (usable[i]) by_link[occupancies[i].link].push_back(i);
  for (std::size_t link = 0; link < links; ++link) {
    std::vector<std::size_t>& ids = by_link[link];
    std::sort(ids.begin(), ids.end(), [&](std::size_t a, std::size_t b) {
      return std::make_tuple(occupancies[a].begin, a) <
             std::make_tuple(occupancies[b].begin, b);
    });
    Cost max_end = -kInfiniteTime;
    std::size_t max_id = 0;
    for (std::size_t id : ids) {
      const platform::LinkOccupancy& o = occupancies[id];
      const bool zero_length = o.end <= o.begin + tolerance;
      if (!zero_length && o.begin < max_end - tolerance) {
        const platform::LinkOccupancy& m = occupancies[max_id];
        std::ostringstream os;
        os << "transfers overlap on link " << link << ": [" << m.begin
           << ", " << m.end << ") vs [" << o.begin << ", " << o.end << ")";
        out.push_back({Violation::Kind::kLinkBusyViolation, kInvalidTask,
                       os.str()});
      }
      if (o.end > max_end) {
        max_end = o.end;
        max_id = id;
      }
    }
  }
  return out;
}

std::string to_string(const Violation& v) {
  const char* kind = "";
  switch (v.kind) {
    case Violation::Kind::kUnscheduledTask: kind = "unscheduled-task"; break;
    case Violation::Kind::kNonFiniteTime: kind = "non-finite-time"; break;
    case Violation::Kind::kWrongDuration: kind = "wrong-duration"; break;
    case Violation::Kind::kNegativeStart: kind = "negative-start"; break;
    case Violation::Kind::kProcessorOverlap: kind = "processor-overlap"; break;
    case Violation::Kind::kPrecedence: kind = "precedence"; break;
    case Violation::Kind::kLinkBusyViolation: kind = "link-busy"; break;
  }
  return std::string("[") + kind + "] " + v.detail;
}

}  // namespace flb
