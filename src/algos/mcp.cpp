#include "flb/algos/mcp.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/sched/tentative.hpp"
#include "flb/util/error.hpp"
#include "flb/util/indexed_heap.hpp"
#include "flb/util/rng.hpp"

namespace flb {

Schedule McpScheduler::run(const TaskGraph& g, ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "MCP: at least one processor required");
  const TaskId n = g.num_tasks();
  Schedule sched(num_procs, n);

  std::vector<Cost> alap = alap_times(g);
  Rng rng(seed_);
  std::vector<double> tie(n);
  for (double& v : tie) v = rng.next_double();

  // Ready list keyed by (ALAP, random tie key, id).
  using Key = std::tuple<Cost, double, TaskId>;
  IndexedMinHeap<Key> ready(n);
  std::vector<std::size_t> unscheduled_preds(n);
  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) ready.push(t, {alap[t], tie[t], t});
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    TaskId t = static_cast<TaskId>(ready.pop());
    ProcId p;
    Cost est;
    if (insertion_) {
      // Earliest feasible start on each processor, idle gaps included. The
      // gap search is bounded below by the data-ready time on q: local
      // predecessors must have finished (their messages are free but their
      // results must exist), remote ones pay the edge cost.
      p = 0;
      est = kInfiniteTime;
      for (ProcId q = 0; q < num_procs; ++q) {
        Cost data_ready = 0.0;
        for (const Adj& a : g.predecessors(t)) {
          Cost c = sched.proc(a.node) == q ? 0.0 : a.comm;
          data_ready = std::max(data_ready, sched.finish(a.node) + c);
        }
        Cost candidate = sched.earliest_gap(q, data_ready, g.comp(t));
        if (candidate < est) {
          est = candidate;
          p = q;
        }
      }
    } else {
      // End-of-timeline placement: exhaustive earliest-start scan (lower
      // proc id wins ties inside best_proc_exhaustive).
      std::tie(p, est) = best_proc_exhaustive(g, sched, t);
    }
    sched.assign(t, p, est, est + g.comp(t));
    for (const Adj& a : g.successors(t)) {
      if (--unscheduled_preds[a.node] == 0)
        ready.push(a.node, {alap[a.node], tie[a.node], a.node});
    }
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

}  // namespace flb
