#include "flb/algos/etf.hpp"

#include <algorithm>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/util/error.hpp"

namespace flb {

namespace {

/// Per-ready-task cache so each iteration costs O(P) per task rather than
/// O(in-degree * P): the minimum EST over processors only needs LMT, the
/// enabling processor, and the arrival max excluding the enabling
/// processor's messages (EMT on EP). For p != EP, EMT(t,p) = LMT(t).
struct ReadyTask {
  TaskId task;
  Cost lmt;         // last message arrival time
  Cost emt_on_ep;   // arrival max over predecessors not on EP
  ProcId ep;        // enabling processor (kInvalidProc for entry tasks)
};

}  // namespace

Schedule EtfScheduler::run(const TaskGraph& g, ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "ETF: at least one processor required");
  const TaskId n = g.num_tasks();
  Schedule sched(num_procs, n);
  std::vector<Cost> bl = bottom_levels(g);

  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<ReadyTask> ready;
  ready.reserve(n);

  auto make_ready = [&](TaskId t) {
    ReadyTask r{t, 0.0, 0.0, kInvalidProc};
    for (const Adj& a : g.predecessors(t)) {
      Cost arrival = sched.finish(a.node) + a.comm;
      if (arrival > r.lmt || r.ep == kInvalidProc) {
        r.lmt = arrival;
        r.ep = sched.proc(a.node);
      }
    }
    for (const Adj& a : g.predecessors(t)) {
      if (sched.proc(a.node) == r.ep) continue;
      r.emt_on_ep = std::max(r.emt_on_ep, sched.finish(a.node) + a.comm);
    }
    ready.push_back(r);
  };

  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) make_ready(t);
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    // Exhaustive tentative scheduling: every ready task on every processor.
    std::size_t best_idx = 0;
    ProcId best_proc = 0;
    Cost best_est = kInfiniteTime;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const ReadyTask& r = ready[i];
      for (ProcId p = 0; p < num_procs; ++p) {
        Cost emt = (p == r.ep) ? r.emt_on_ep : r.lmt;
        Cost est = std::max(emt, sched.proc_ready_time(p));
        bool better = est < best_est;
        if (!better && est == best_est) {
          const ReadyTask& b = ready[best_idx];
          // Static-priority tie-break: larger bottom level, then smaller
          // task id, then smaller processor id.
          better = bl[r.task] > bl[b.task] ||
                   (bl[r.task] == bl[b.task] &&
                    (r.task < b.task || (r.task == b.task && p < best_proc)));
        }
        if (better) {
          best_est = est;
          best_idx = i;
          best_proc = p;
        }
      }
    }

    TaskId t = ready[best_idx].task;
    sched.assign(t, best_proc, best_est, best_est + g.comp(t));
    ready[best_idx] = ready.back();
    ready.pop_back();
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0) make_ready(a.node);
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

Schedule EtfScheduler::run_on(const TaskGraph& g, platform::CostModel& model) {
  const ProcId num_procs = model.num_procs();
  const TaskId n = g.num_tasks();
  Schedule sched(num_procs, n);
  std::vector<Cost> bl = bottom_levels(g);
  const bool link_busy = model.mode() == platform::CommMode::kLinkBusy;

  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<TaskId> ready;
  ready.reserve(n);

  // Exhaustive pricing replaces the clique-only EMT/LMT cache of run():
  // every (ready task, alive processor) pair is priced fresh through the
  // model, so routed hops, link reservations, cold caches and admission
  // windows all steer the selection. On a plain clique the values coincide
  // with the cached ones (Corollary 2), so the selection is identical.
  auto est_on = [&](TaskId t, ProcId p) -> Cost {
    Cost est = std::max(sched.proc_ready_time(p), model.admission(p));
    for (const Adj& a : g.predecessors(t))
      est = std::max(est, model.arrival(sched.proc(a.node), p, a.comm,
                                        sched.finish(a.node)));
    return est;
  };

  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) ready.push_back(t);
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    std::size_t best_idx = 0;
    ProcId best_proc = kInvalidProc;
    Cost best_est = kInfiniteTime;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const TaskId t = ready[i];
      for (ProcId p = 0; p < num_procs; ++p) {
        if (!model.alive(p)) continue;
        const Cost est = est_on(t, p);
        bool better = est < best_est || best_proc == kInvalidProc;
        if (!better && est == best_est) {
          const TaskId b = ready[best_idx];
          better = bl[t] > bl[b] ||
                   (bl[t] == bl[b] &&
                    (t < b || (t == b && p < best_proc)));
        }
        if (better) {
          best_est = est;
          best_idx = i;
          best_proc = p;
        }
      }
    }
    FLB_ASSERT(best_proc != kInvalidProc);

    const TaskId t = ready[best_idx];
    Cost start = best_est;
    if (link_busy) {
      // Reserve the chosen task's incoming routes; identical arithmetic to
      // the probe just above, so start == best_est.
      start = std::max(sched.proc_ready_time(best_proc),
                       model.admission(best_proc));
      for (const Adj& a : g.predecessors(t))
        start = std::max(start,
                         model.commit_arrival(sched.proc(a.node), best_proc,
                                              a.comm, sched.finish(a.node)));
    }
    sched.assign(t, best_proc, start, start + model.exec(g, t, best_proc, 0.0));
    ready[best_idx] = ready.back();
    ready.pop_back();
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0) ready.push_back(a.node);
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

}  // namespace flb
