#include "flb/algos/dsc.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/indexed_heap.hpp"

namespace flb {

Cost Clustering::schedule_length() const {
  Cost len = 0.0;
  for (Cost f : finish) len = std::max(len, f);
  return len;
}

Clustering dsc_cluster(const TaskGraph& g) {
  const TaskId n = g.num_tasks();
  Clustering result;
  result.cluster_of.assign(n, 0);
  result.start.assign(n, 0.0);
  result.finish.assign(n, 0.0);
  if (n == 0) return result;

  std::vector<Cost> bl = bottom_levels(g);

  // Free-task heap by descending priority tlevel + blevel (the dominant
  // sequence runs through the highest-priority free task). tlevel of a free
  // task here is its earliest start on a fresh cluster, i.e. its LMT.
  using Key = std::tuple<Cost, TaskId>;  // (-(tlevel+blevel), id)
  IndexedMinHeap<Key> free_tasks(n);

  std::vector<std::size_t> unexamined_preds(n);
  std::vector<Cost> lmt(n, 0.0);          // arrival max over clustered preds
  std::vector<TaskId> last_pred(n, kInvalidTask);  // pred achieving the max

  // Cluster state: ready time (finish of the cluster's last task).
  std::vector<Cost> cluster_ready;
  std::vector<std::vector<TaskId>> members;

  for (TaskId t = 0; t < n; ++t) {
    unexamined_preds[t] = g.in_degree(t);
    if (unexamined_preds[t] == 0) free_tasks.push(t, {-(0.0 + bl[t]), t});
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!free_tasks.empty());
    TaskId t = static_cast<TaskId>(free_tasks.pop());

    // Candidate 1: a fresh cluster — start at LMT(t).
    Cost est_new = lmt[t];

    // Candidate 2: append to the cluster of the predecessor the last
    // message arrives from, zeroing communication from every predecessor
    // already in that cluster.
    ClusterId dest = 0;
    bool have_dest = last_pred[t] != kInvalidTask;
    Cost est_append = kInfiniteTime;
    if (have_dest) {
      dest = result.cluster_of[last_pred[t]];
      Cost arrivals = 0.0;
      for (const Adj& a : g.predecessors(t)) {
        Cost c = result.cluster_of[a.node] == dest ? 0.0 : a.comm;
        arrivals = std::max(arrivals, result.finish[a.node] + c);
      }
      est_append = std::max(arrivals, cluster_ready[dest]);
    }

    Cost st;
    ClusterId c;
    if (have_dest && est_append <= est_new) {
      c = dest;
      st = est_append;
    } else {
      c = static_cast<ClusterId>(cluster_ready.size());
      cluster_ready.push_back(0.0);
      members.emplace_back();
      st = est_new;
    }
    result.cluster_of[t] = c;
    result.start[t] = st;
    result.finish[t] = st + g.comp(t);
    cluster_ready[c] = result.finish[t];
    members[c].push_back(t);

    // Release successors; track their LMT and enabling predecessor.
    for (const Adj& a : g.successors(t)) {
      TaskId s = a.node;
      Cost arrival = result.finish[t] + a.comm;
      if (arrival > lmt[s] || last_pred[s] == kInvalidTask) {
        lmt[s] = arrival;
        last_pred[s] = t;
      }
      if (--unexamined_preds[s] == 0)
        free_tasks.push(s, {-(lmt[s] + bl[s]), s});
    }
  }

  result.num_clusters = static_cast<ClusterId>(cluster_ready.size());
  result.members = std::move(members);
  return result;
}

}  // namespace flb
