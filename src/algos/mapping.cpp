#include "flb/algos/mapping.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/indexed_heap.hpp"

namespace flb {

Schedule schedule_with_fixed_assignment(const TaskGraph& g,
                                        const std::vector<ProcId>& proc_of,
                                        ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1,
              "schedule_with_fixed_assignment: at least one processor");
  FLB_REQUIRE(proc_of.size() == g.num_tasks(),
              "schedule_with_fixed_assignment: assignment size mismatch");
  for (ProcId p : proc_of)
    FLB_REQUIRE(p < num_procs,
                "schedule_with_fixed_assignment: processor out of range");

  const TaskId n = g.num_tasks();
  Schedule sched(num_procs, n);
  std::vector<Cost> bl = bottom_levels(g);

  using Key = std::tuple<Cost, TaskId>;  // (-bottom level, id)
  IndexedMinHeap<Key> ready(n);
  std::vector<std::size_t> unscheduled_preds(n);
  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) ready.push(t, {-bl[t], t});
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    TaskId t = static_cast<TaskId>(ready.pop());
    ProcId p = proc_of[t];
    Cost est = sched.proc_ready_time(p);
    for (const Adj& a : g.predecessors(t)) {
      Cost c = sched.proc(a.node) == p ? 0.0 : a.comm;
      est = std::max(est, sched.finish(a.node) + c);
    }
    sched.assign(t, p, est, est + g.comp(t));
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0)
        ready.push(a.node, {-bl[a.node], a.node});
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

Schedule wrap_map(const TaskGraph& g, const Clustering& clustering,
                  ProcId num_procs) {
  FLB_REQUIRE(clustering.cluster_of.size() == g.num_tasks(),
              "wrap_map: clustering does not match the graph");
  std::vector<ProcId> proc_of(g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    proc_of[t] = static_cast<ProcId>(clustering.cluster_of[t] % num_procs);
  return schedule_with_fixed_assignment(g, proc_of, num_procs);
}

Schedule work_map(const TaskGraph& g, const Clustering& clustering,
                  ProcId num_procs) {
  FLB_REQUIRE(clustering.cluster_of.size() == g.num_tasks(),
              "work_map: clustering does not match the graph");

  // Total computation per cluster.
  std::vector<Cost> work(clustering.num_clusters, 0.0);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    work[clustering.cluster_of[t]] += g.comp(t);

  // Heaviest cluster first onto the least-loaded processor (LPT).
  std::vector<ClusterId> order(clustering.num_clusters);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](ClusterId a, ClusterId b) {
    return work[a] != work[b] ? work[a] > work[b] : a < b;
  });
  std::vector<Cost> load(num_procs, 0.0);
  std::vector<ProcId> proc_of_cluster(clustering.num_clusters, 0);
  for (ClusterId c : order) {
    ProcId best = 0;
    for (ProcId p = 1; p < num_procs; ++p)
      if (load[p] < load[best]) best = p;
    proc_of_cluster[c] = best;
    load[best] += work[c];
  }

  std::vector<ProcId> proc_of(g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    proc_of[t] = proc_of_cluster[clustering.cluster_of[t]];
  return schedule_with_fixed_assignment(g, proc_of, num_procs);
}

}  // namespace flb
