#include "flb/algos/ish.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/indexed_heap.hpp"

namespace flb {

Schedule IshScheduler::run(const TaskGraph& g, ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "ISH: at least one processor required");
  const TaskId n = g.num_tasks();
  Schedule sched(num_procs, n);
  std::vector<Cost> sl = computation_bottom_levels(g);

  using Key = std::tuple<Cost, TaskId>;  // (-static level, id)
  IndexedMinHeap<Key> ready(n);
  std::vector<std::size_t> unscheduled_preds(n);
  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) ready.push(t, {-sl[t], t});
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    TaskId t = static_cast<TaskId>(ready.pop());
    ProcId best_p = 0;
    Cost best_start = kInfiniteTime;
    for (ProcId p = 0; p < num_procs; ++p) {
      Cost data_ready = 0.0;
      for (const Adj& a : g.predecessors(t)) {
        Cost c = sched.proc(a.node) == p ? 0.0 : a.comm;
        data_ready = std::max(data_ready, sched.finish(a.node) + c);
      }
      Cost start = sched.earliest_gap(p, data_ready, g.comp(t));
      if (start < best_start) {
        best_start = start;
        best_p = p;
      }
    }
    sched.assign(t, best_p, best_start, best_start + g.comp(t));
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0)
        ready.push(a.node, {-sl[a.node], a.node});
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

}  // namespace flb
