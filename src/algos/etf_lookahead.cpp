#include "flb/algos/etf_lookahead.hpp"

#include <algorithm>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"

namespace flb {

namespace {

struct ReadyTask {
  TaskId task;
  Cost lmt;
  Cost emt_on_ep;
  ProcId ep;
  TaskId critical_child;  // kInvalidTask for exit tasks
  Cost child_edge_comm;
};

}  // namespace

Schedule EtfLookaheadScheduler::run(const TaskGraph& g, ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "ETF-LA: at least one processor required");
  const TaskId n = g.num_tasks();
  Schedule sched(num_procs, n);
  std::vector<Cost> bl = bottom_levels(g);

  // Static critical child per task: the successor whose edge + bottom
  // level dominates the remaining work below the task.
  std::vector<TaskId> critical_child(n, kInvalidTask);
  std::vector<Cost> child_comm(n, 0.0);
  for (TaskId t = 0; t < n; ++t) {
    Cost best = -1.0;
    for (const Adj& a : g.successors(t)) {
      Cost weight = a.comm + bl[a.node];
      if (weight > best) {
        best = weight;
        critical_child[t] = a.node;
        child_comm[t] = a.comm;
      }
    }
  }

  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<ReadyTask> ready;
  ready.reserve(n);

  auto make_ready = [&](TaskId t) {
    ReadyTask r{t, 0.0, 0.0, kInvalidProc, critical_child[t], child_comm[t]};
    for (const Adj& a : g.predecessors(t)) {
      Cost arrival = sched.finish(a.node) + a.comm;
      if (arrival > r.lmt || r.ep == kInvalidProc) {
        r.lmt = arrival;
        r.ep = sched.proc(a.node);
      }
    }
    for (const Adj& a : g.predecessors(t)) {
      if (sched.proc(a.node) == r.ep) continue;
      r.emt_on_ep = std::max(r.emt_on_ep, sched.finish(a.node) + a.comm);
    }
    ready.push_back(r);
  };

  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) make_ready(t);
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());

    // Phase 1 — ETF's criterion: the global minimum EST over all
    // (ready task, processor) pairs.
    Cost best_est = kInfiniteTime;
    for (const ReadyTask& r : ready) {
      for (ProcId p = 0; p < num_procs; ++p) {
        Cost emt = (p == r.ep) ? r.emt_on_ep : r.lmt;
        best_est = std::min(best_est,
                            std::max(emt, sched.proc_ready_time(p)));
      }
    }

    // Phase 2 — lookahead tie-break: every pair achieving that minimum is
    // scored by the estimated start of the task's critical child; the
    // smallest projected child start wins (remaining ties: larger bottom
    // level, then ids). This is exactly the degree of freedom in which
    // ETF, FLB and this variant differ (paper Sections 4/6.2).
    ProcId idle = 0;
    for (ProcId q = 1; q < num_procs; ++q)
      if (sched.proc_ready_time(q) < sched.proc_ready_time(idle)) idle = q;

    std::size_t best_idx = 0;
    ProcId best_proc = kInvalidProc;
    Cost best_score = kInfiniteTime;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const ReadyTask& r = ready[i];
      // Arrival at the earliest-idle processor from the critical child's
      // other scheduled parents, shared across this task's pairs.
      TaskId c = r.critical_child;
      Cost other_arr_idle = 0.0;
      bool other_computed = false;

      for (ProcId p = 0; p < num_procs; ++p) {
        Cost emt = (p == r.ep) ? r.emt_on_ep : r.lmt;
        Cost est = std::max(emt, sched.proc_ready_time(p));
        if (est > best_est) continue;  // not an earliest-start pair
        Cost ft = est + g.comp(r.task);

        Cost score;
        if (c == kInvalidTask) {
          score = ft;
        } else {
          if (!other_computed) {
            for (const Adj& in : g.predecessors(c)) {
              if (in.node == r.task || !sched.is_scheduled(in.node))
                continue;
              other_arr_idle = std::max(
                  other_arr_idle,
                  sched.finish(in.node) +
                      (sched.proc(in.node) == idle ? 0.0 : in.comm));
            }
            other_computed = true;
          }
          Cost arr_other_p = 0.0;
          for (const Adj& in : g.predecessors(c)) {
            if (in.node == r.task || !sched.is_scheduled(in.node)) continue;
            arr_other_p = std::max(
                arr_other_p, sched.finish(in.node) +
                                 (sched.proc(in.node) == p ? 0.0 : in.comm));
          }
          Cost child_on_p =
              std::max({ft, arr_other_p, sched.proc_ready_time(p)});
          Cost t_arrival_idle = ft + (idle == p ? 0.0 : r.child_edge_comm);
          Cost child_on_idle =
              std::max({t_arrival_idle, other_arr_idle,
                        sched.proc_ready_time(idle)});
          score = std::min(child_on_p, child_on_idle);
        }

        bool better = best_proc == kInvalidProc || score < best_score;
        if (!better && score == best_score) {
          const ReadyTask& b = ready[best_idx];
          better = bl[r.task] > bl[b.task] ||
                   (bl[r.task] == bl[b.task] &&
                    (r.task < b.task || (r.task == b.task && p < best_proc)));
        }
        if (better) {
          best_score = score;
          best_idx = i;
          best_proc = p;
        }
      }
    }
    FLB_ASSERT(best_proc != kInvalidProc);

    TaskId t = ready[best_idx].task;
    sched.assign(t, best_proc, best_est, best_est + g.comp(t));
    ready[best_idx] = ready.back();
    ready.pop_back();
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0) make_ready(a.node);
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

}  // namespace flb
