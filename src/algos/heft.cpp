#include "flb/algos/heft.hpp"

#include <algorithm>
#include <tuple>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/indexed_heap.hpp"

namespace flb {

std::vector<Cost> upward_ranks(const TaskGraph& g,
                               const HeteroMachine& machine) {
  std::vector<TaskId> order = topological_order(g);
  std::vector<Cost> rank(g.num_tasks(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TaskId t = *it;
    Cost best = 0.0;
    for (const Adj& a : g.successors(t))
      best = std::max(best, a.comm + rank[a.node]);
    rank[t] = machine.mean_exec_time(g.comp(t)) + best;
  }
  return rank;
}

std::vector<Cost> upward_ranks(const TaskGraph& g,
                               const platform::CostModel& model) {
  std::vector<TaskId> order = topological_order(g);
  std::vector<Cost> rank(g.num_tasks(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TaskId t = *it;
    Cost best = 0.0;
    for (const Adj& a : g.successors(t))
      best = std::max(best, model.message_cost(a.comm) + rank[a.node]);
    rank[t] = model.mean_exec_work(model.work_of(g, t)) + best;
  }
  return rank;
}

std::vector<Cost> downward_ranks(const TaskGraph& g,
                                 const HeteroMachine& machine) {
  std::vector<TaskId> order = topological_order(g);
  std::vector<Cost> rank(g.num_tasks(), 0.0);
  for (TaskId t : order) {
    Cost best = 0.0;
    for (const Adj& a : g.predecessors(t))
      best = std::max(best,
                      rank[a.node] + machine.mean_exec_time(g.comp(a.node)) +
                          a.comm);
    rank[t] = best;
  }
  return rank;
}

namespace {

/// Earliest finish of t on p against the partial schedule, idle gaps
/// included: start = earliest gap >= data-ready time, finish = start +
/// speed-scaled execution time.
std::pair<Cost, Cost> eft_on(const TaskGraph& g, const HeteroMachine& machine,
                             const Schedule& s, TaskId t, ProcId p) {
  Cost ready = 0.0;
  for (const Adj& a : g.predecessors(t)) {
    Cost c = s.proc(a.node) == p ? 0.0 : a.comm;
    ready = std::max(ready, s.finish(a.node) + c);
  }
  Cost exec = machine.exec_time(g.comp(t), p);
  Cost start = s.earliest_gap(p, ready, exec);
  return {start, start + exec};
}

/// As eft_on, but priced through the platform cost model: the data-ready
/// time is the model's cold-aware arrival max clamped to the processor's
/// admission instant, execution uses the model's speeds/overrides.
std::pair<Cost, Cost> eft_on_model(const TaskGraph& g,
                                   const platform::CostModel& model,
                                   const Schedule& s, TaskId t, ProcId p) {
  Cost ready = model.admission(p);
  for (const Adj& a : g.predecessors(t))
    ready = std::max(ready,
                     model.arrival(s.proc(a.node), p, a.comm, s.finish(a.node)));
  Cost exec = model.exec(g, t, p, 0.0);
  Cost start = s.earliest_gap(p, ready, exec);
  return {start, start + exec};
}

/// Shared driver: consume ready tasks in descending `priority` order,
/// placing each with `choose` (returns the processor).
template <typename ChooseProc>
Schedule run_list(const TaskGraph& g, const HeteroMachine& machine,
                  const std::vector<Cost>& priority, ChooseProc&& choose) {
  const TaskId n = g.num_tasks();
  Schedule sched(machine.num_procs(), n);
  using Key = std::tuple<Cost, TaskId>;  // (-priority, id)
  IndexedMinHeap<Key> ready(n);
  std::vector<std::size_t> unscheduled_preds(n);
  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) ready.push(t, {-priority[t], t});
  }
  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    TaskId t = static_cast<TaskId>(ready.pop());
    ProcId p = choose(sched, t);
    auto [start, finish] = eft_on(g, machine, sched, t, p);
    sched.assign(t, p, start, finish);
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0)
        ready.push(a.node, {-priority[a.node], a.node});
  }
  FLB_ASSERT(sched.complete());
  return sched;
}

}  // namespace

Schedule heft(const TaskGraph& g, const HeteroMachine& machine) {
  std::vector<Cost> rank = upward_ranks(g, machine);
  return run_list(g, machine, rank, [&](const Schedule& s, TaskId t) {
    ProcId best_p = 0;
    Cost best_eft = kInfiniteTime;
    for (ProcId p = 0; p < machine.num_procs(); ++p) {
      Cost eft = eft_on(g, machine, s, t, p).second;
      if (eft < best_eft) {
        best_eft = eft;
        best_p = p;
      }
    }
    return best_p;
  });
}

Schedule heft(const TaskGraph& g, platform::CostModel& model) {
  const TaskId n = g.num_tasks();
  std::vector<Cost> priority = upward_ranks(g, model);
  Schedule sched(model.num_procs(), n);
  using Key = std::tuple<Cost, TaskId>;  // (-priority, id)
  IndexedMinHeap<Key> ready(n);
  std::vector<std::size_t> unscheduled_preds(n);
  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) ready.push(t, {-priority[t], t});
  }
  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    TaskId t = static_cast<TaskId>(ready.pop());
    ProcId best_p = kInvalidProc;
    Cost best_eft = kInfiniteTime;
    for (ProcId p = 0; p < model.num_procs(); ++p) {
      if (!model.alive(p)) continue;
      Cost eft = eft_on_model(g, model, sched, t, p).second;
      if (eft < best_eft || best_p == kInvalidProc) {
        best_eft = eft;
        best_p = p;
      }
    }
    FLB_ASSERT(best_p != kInvalidProc);
    auto [start, finish] = eft_on_model(g, model, sched, t, best_p);
    if (model.mode() == platform::CommMode::kLinkBusy) {
      // Reserve the incoming routes; commits serialize transfers that
      // share a link, so the data-ready time (and hence the insertion
      // search) is recomputed from the committed arrivals.
      Cost ready_at = model.admission(best_p);
      for (const Adj& a : g.predecessors(t))
        ready_at = std::max(ready_at,
                            model.commit_arrival(sched.proc(a.node), best_p,
                                                 a.comm, sched.finish(a.node)));
      const Cost exec = model.exec(g, t, best_p, 0.0);
      start = sched.earliest_gap(best_p, ready_at, exec);
      finish = start + exec;
    }
    sched.assign(t, best_p, start, finish);
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0)
        ready.push(a.node, {-priority[a.node], a.node});
  }
  FLB_ASSERT(sched.complete());
  return sched;
}

Schedule cpop(const TaskGraph& g, const HeteroMachine& machine) {
  std::vector<Cost> up = upward_ranks(g, machine);
  std::vector<Cost> down = downward_ranks(g, machine);
  const TaskId n = g.num_tasks();
  std::vector<Cost> priority(n);
  for (TaskId t = 0; t < n; ++t) priority[t] = up[t] + down[t];

  // The critical path: walk from the highest-priority entry task, always
  // stepping to the highest-priority successor.
  std::vector<bool> on_cp(n, false);
  if (n > 0) {
    TaskId cur = kInvalidTask;
    for (TaskId t = 0; t < n; ++t)
      if (g.is_entry(t) && (cur == kInvalidTask || priority[t] > priority[cur]))
        cur = t;
    while (cur != kInvalidTask) {
      on_cp[cur] = true;
      TaskId next = kInvalidTask;
      for (const Adj& a : g.successors(cur))
        if (next == kInvalidTask || priority[a.node] > priority[next])
          next = a.node;
      cur = next;
    }
  }

  // The critical-path processor executes the whole path fastest.
  Cost cp_comp = 0.0;
  for (TaskId t = 0; t < n; ++t)
    if (on_cp[t]) cp_comp += g.comp(t);
  ProcId cp_proc = 0;
  for (ProcId p = 1; p < machine.num_procs(); ++p)
    if (machine.exec_time(cp_comp, p) <
        machine.exec_time(cp_comp, cp_proc))
      cp_proc = p;

  return run_list(g, machine, priority, [&](const Schedule& s, TaskId t) {
    if (on_cp[t]) return cp_proc;
    ProcId best_p = 0;
    Cost best_eft = kInfiniteTime;
    for (ProcId p = 0; p < machine.num_procs(); ++p) {
      Cost eft = eft_on(g, machine, s, t, p).second;
      if (eft < best_eft) {
        best_eft = eft;
        best_p = p;
      }
    }
    return best_p;
  });
}

}  // namespace flb
