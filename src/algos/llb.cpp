#include "flb/algos/llb.hpp"

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/sched/tentative.hpp"
#include "flb/util/error.hpp"
#include "flb/util/heap_forest.hpp"
#include "flb/util/indexed_heap.hpp"

namespace flb {

namespace {

// Bottom levels with intra-cluster communication zeroed: after clustering,
// messages inside one cluster are free by construction.
std::vector<Cost> clustered_bottom_levels(const TaskGraph& g,
                                          const Clustering& clustering) {
  std::vector<TaskId> order = topological_order(g);
  std::vector<Cost> bl(g.num_tasks(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TaskId t = *it;
    Cost best = 0.0;
    for (const Adj& a : g.successors(t)) {
      Cost c = clustering.cluster_of[t] == clustering.cluster_of[a.node]
                   ? 0.0
                   : a.comm;
      best = std::max(best, bl[a.node] + c);
    }
    bl[t] = g.comp(t) + best;
  }
  return bl;
}

}  // namespace

Schedule llb_map(const TaskGraph& g, const Clustering& clustering,
                 ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "LLB: at least one processor required");
  const TaskId n = g.num_tasks();
  FLB_REQUIRE(clustering.cluster_of.size() == n,
              "LLB: clustering does not match the graph");
  Schedule sched(num_procs, n);
  if (n == 0) return sched;

  std::vector<Cost> bl = clustered_bottom_levels(g, clustering);

  using TaskKey = std::tuple<Cost, TaskId>;  // (-bottom level, id)
  using ProcKey = std::pair<Cost, ProcId>;   // (PRT, id)

  // Ready tasks whose cluster is mapped, per destination processor. A task
  // is mapped to at most one processor, so one forest of P heaps sharing
  // the task id space suffices (O(V + P) setup).
  IndexedHeapForest<TaskKey> proc_ready(n, num_procs);
  // Ready tasks of still-unmapped clusters.
  IndexedMinHeap<TaskKey> unmapped_ready(n);
  // All processors by ready time; processors with non-empty proc_ready.
  IndexedMinHeap<ProcKey> procs_all(num_procs), procs_with_ready(num_procs);
  for (ProcId p = 0; p < num_procs; ++p) procs_all.push(p, {0.0, p});

  std::vector<ProcId> cluster_proc(clustering.num_clusters, kInvalidProc);
  // Ready-but-unscheduled tasks of each unmapped cluster, migrated to the
  // destination processor's heap when the cluster gets mapped.
  std::vector<std::vector<TaskId>> cluster_pending(clustering.num_clusters);

  auto sync_ready_proc = [&](ProcId p) {
    if (proc_ready.empty(p)) {
      if (procs_with_ready.contains(p)) procs_with_ready.erase(p);
    } else {
      procs_with_ready.push_or_update(p, {sched.proc_ready_time(p), p});
    }
  };

  auto on_ready = [&](TaskId t) {
    ClusterId c = clustering.cluster_of[t];
    ProcId p = cluster_proc[c];
    if (p == kInvalidProc) {
      unmapped_ready.push(t, {-bl[t], t});
      cluster_pending[c].push_back(t);
    } else {
      proc_ready.push(p, t, {-bl[t], t});
      sync_ready_proc(p);
    }
  };

  std::vector<std::size_t> unscheduled_preds(n);
  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) on_ready(t);
  }

  for (TaskId step = 0; step < n; ++step) {
    // Destination: the processor becoming idle the earliest. If it has no
    // candidate at all (no ready mapped task and no unmapped task exists),
    // fall back to the earliest-idle processor with ready mapped work.
    ProcId p = static_cast<ProcId>(procs_all.top());
    bool have_a = !proc_ready.empty(p);
    bool have_b = !unmapped_ready.empty();
    if (!have_a && !have_b) {
      FLB_ASSERT(!procs_with_ready.empty());
      p = static_cast<ProcId>(procs_with_ready.top());
      have_a = true;
    }

    TaskId ta = have_a ? static_cast<TaskId>(proc_ready.top(p))
                       : kInvalidTask;
    TaskId tb = have_b ? static_cast<TaskId>(unmapped_ready.top())
                       : kInvalidTask;
    Cost est_a = have_a ? est_start(g, sched, ta, p) : kInfiniteTime;
    Cost est_b = have_b ? est_start(g, sched, tb, p) : kInfiniteTime;

    // The earlier-starting candidate wins; ties keep clusters together.
    bool choose_a = have_a && (!have_b || est_a <= est_b);
    TaskId t = choose_a ? ta : tb;
    Cost est = choose_a ? est_a : est_b;

    if (choose_a) {
      proc_ready.erase(t);
    } else {
      unmapped_ready.erase(t);
      // Map the whole cluster to p and migrate its other ready tasks.
      ClusterId c = clustering.cluster_of[t];
      cluster_proc[c] = p;
      for (TaskId pending : cluster_pending[c]) {
        if (pending == t || !unmapped_ready.contains(pending)) continue;
        unmapped_ready.erase(pending);
        proc_ready.push(p, pending, {-bl[pending], pending});
      }
      cluster_pending[c].clear();
    }

    sched.assign(t, p, est, est + g.comp(t));
    procs_all.update(p, {sched.proc_ready_time(p), p});
    sync_ready_proc(p);

    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0) on_ready(a.node);
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

Schedule DscLlbScheduler::run(const TaskGraph& g, ProcId num_procs) {
  Clustering clustering = dsc_cluster(g);
  return llb_map(g, clustering, num_procs);
}

}  // namespace flb
