#include "flb/algos/duplication.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/indexed_heap.hpp"

namespace flb {

DupSchedule::DupSchedule(ProcId num_procs, TaskId num_tasks)
    : instances_(num_tasks), timelines_(num_procs), slots_(num_procs) {
  FLB_REQUIRE(num_procs >= 1, "DupSchedule: at least one processor required");
}

void DupSchedule::place(TaskId t, ProcId p, Cost start, Cost finish) {
  FLB_REQUIRE(t < instances_.size(), "DupSchedule::place: task out of range");
  FLB_REQUIRE(p < timelines_.size(),
              "DupSchedule::place: processor out of range");
  FLB_REQUIRE(finish >= start, "DupSchedule::place: finish precedes start");
  FLB_REQUIRE(start >= 0.0, "DupSchedule::place: negative start time");
  FLB_REQUIRE(instance_on(t, p) == nullptr,
              "DupSchedule::place: task " + std::to_string(t) +
                  " already has an instance on processor " +
                  std::to_string(p));

  auto& slots = slots_[p];
  auto it = std::upper_bound(
      slots.begin(), slots.end(), start,
      [](Cost s, const Placement& pl) { return s < pl.start; });
  // As in Schedule::assign: only positive-measure executions can conflict.
  if (finish > start) {
    for (auto left = it; left != slots.begin();) {
      --left;
      if (left->finish <= left->start) continue;  // zero-duration
      FLB_REQUIRE(left->finish <= start,
                  "DupSchedule::place: overlap on processor " +
                      std::to_string(p));
      break;
    }
    for (auto right = it; right != slots.end(); ++right) {
      if (right->finish <= right->start) continue;  // zero-duration
      FLB_REQUIRE(finish <= right->start,
                  "DupSchedule::place: overlap on processor " +
                      std::to_string(p));
      break;
    }
  }

  std::size_t idx = static_cast<std::size_t>(it - slots.begin());
  slots.insert(it, Placement{p, start, finish});
  timelines_[p].insert(timelines_[p].begin() + static_cast<std::ptrdiff_t>(idx),
                       t);
  instances_[t].push_back({p, start, finish});
  ++num_instances_;
}

const Placement* DupSchedule::instance_on(TaskId t, ProcId p) const {
  for (const Placement& pl : instances_[t])
    if (pl.proc == p) return &pl;
  return nullptr;
}

Cost DupSchedule::earliest_finish(TaskId t) const {
  FLB_ASSERT(has_instance(t));
  Cost best = kInfiniteTime;
  for (const Placement& pl : instances_[t]) best = std::min(best, pl.finish);
  return best;
}

const Placement& DupSchedule::placement_on(TaskId t, ProcId p) const {
  const Placement* pl = instance_on(t, p);
  FLB_ASSERT(pl != nullptr);
  return *pl;
}

Cost DupSchedule::earliest_gap(ProcId p, Cost earliest, Cost duration) const {
  Cost candidate = std::max(earliest, 0.0);
  for (const Placement& pl : slots_[p]) {
    if (pl.start >= candidate + duration) break;
    candidate = std::max(candidate, pl.finish);
  }
  return candidate;
}

Cost DupSchedule::data_ready(const TaskGraph& g, TaskId t, ProcId p) const {
  Cost ready = 0.0;
  for (const Adj& a : g.predecessors(t)) {
    FLB_ASSERT(has_instance(a.node));
    Cost best = kInfiniteTime;
    for (const Placement& pl : instances_[a.node]) {
      Cost arrival = pl.finish + (pl.proc == p ? 0.0 : a.comm);
      best = std::min(best, arrival);
    }
    ready = std::max(ready, best);
  }
  return ready;
}

Cost DupSchedule::makespan() const {
  Cost m = 0.0;
  for (ProcId p = 0; p < num_procs(); ++p)
    if (!slots_[p].empty()) m = std::max(m, slots_[p].back().finish);
  return m;
}

std::vector<Violation> validate_dup_schedule(const TaskGraph& g,
                                             const DupSchedule& s,
                                             double tolerance) {
  std::vector<Violation> out;
  auto report = [&](Violation::Kind kind, TaskId t, std::string detail) {
    out.push_back({kind, t, std::move(detail)});
  };

  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!s.has_instance(t)) {
      report(Violation::Kind::kUnscheduledTask, t,
             "task " + std::to_string(t) + " has no instance");
      continue;
    }
    for (const Placement& pl : s.instances(t)) {
      if (pl.start < -tolerance) {
        report(Violation::Kind::kNegativeStart, t,
               "task " + std::to_string(t) + " instance starts before 0");
      }
      if (std::abs(pl.finish - (pl.start + g.comp(t))) > tolerance) {
        report(Violation::Kind::kWrongDuration, t,
               "task " + std::to_string(t) + " instance has wrong duration");
      }
    }
  }

  // Per-processor exclusivity: running-maximum sweep over the start-sorted
  // timeline; only positive-measure executions can conflict (zero-duration
  // instances are free to coincide with anything).
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    auto tasks = s.tasks_on(p);
    Cost max_finish = -kInfiniteTime;
    TaskId max_task = kInvalidTask;
    for (TaskId cur : tasks) {
      const Placement& pl = s.placement_on(cur, p);
      bool zero_duration = pl.finish <= pl.start + tolerance;
      if (!zero_duration && pl.start < max_finish - tolerance) {
        std::ostringstream os;
        os << "instances of " << max_task << " and " << cur
           << " overlap on processor " << p;
        report(Violation::Kind::kProcessorOverlap, cur, os.str());
      }
      if (pl.finish > max_finish) {
        max_finish = pl.finish;
        max_task = cur;
      }
    }
  }

  // Precedence: every instance must start after the best arrival from each
  // predecessor (over that predecessor's instances).
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    for (const Placement& pl : s.instances(t)) {
      for (const Adj& a : g.predecessors(t)) {
        if (!s.has_instance(a.node)) continue;  // reported above
        Cost best = kInfiniteTime;
        for (const Placement& src : s.instances(a.node))
          best = std::min(best,
                          src.finish + (src.proc == pl.proc ? 0.0 : a.comm));
        if (pl.start < best - tolerance) {
          std::ostringstream os;
          os << "instance of task " << t << " on p" << pl.proc
             << " starts at " << pl.start << " before data from "
             << a.node << " can arrive at " << best;
          report(Violation::Kind::kPrecedence, t, os.str());
        }
      }
    }
  }
  return out;
}

bool is_valid_dup_schedule(const TaskGraph& g, const DupSchedule& s,
                           double tolerance) {
  return validate_dup_schedule(g, s, tolerance).empty();
}

namespace {

/// Evaluation of one (task, processor) candidate: the achievable start and
/// the duplicates (in placement order) it requires. Tentative intervals are
/// tracked locally so the evaluation never mutates the schedule.
struct Candidate {
  Cost start = kInfiniteTime;
  std::vector<std::pair<TaskId, Cost>> dups;  // (parent, its start on p)
};

class DupEngine {
 public:
  DupEngine(const TaskGraph& g, ProcId num_procs)
      : g_(g), num_procs_(num_procs), sched_(num_procs, g.num_tasks()) {}

  DupSchedule run() {
    const TaskId n = g_.num_tasks();
    std::vector<Cost> bl = bottom_levels(g_);
    using Key = std::tuple<Cost, TaskId>;
    IndexedMinHeap<Key> ready(n);
    std::vector<std::size_t> unscheduled_preds(n);
    for (TaskId t = 0; t < n; ++t) {
      unscheduled_preds[t] = g_.in_degree(t);
      if (unscheduled_preds[t] == 0) ready.push(t, {-bl[t], t});
    }

    for (TaskId step = 0; step < n; ++step) {
      FLB_ASSERT(!ready.empty());
      TaskId t = static_cast<TaskId>(ready.pop());

      ProcId best_p = 0;
      Candidate best;
      for (ProcId p = 0; p < num_procs_; ++p) {
        Candidate c = evaluate(t, p);
        if (c.start < best.start) {
          best = std::move(c);
          best_p = p;
        }
      }

      // Commit the duplicates, then the task itself.
      for (auto [parent, start] : best.dups)
        sched_.place(parent, best_p, start, start + g_.comp(parent));
      sched_.place(t, best_p, best.start, best.start + g_.comp(t));

      for (const Adj& a : g_.successors(t))
        if (--unscheduled_preds[a.node] == 0)
          ready.push(a.node, {-bl[a.node], a.node});
    }
    return std::move(sched_);
  }

 private:
  // Earliest gap on p of length `duration` from `earliest`, avoiding both
  // committed slots and the tentative intervals in `overlay` (kept sorted).
  Cost gap_with_overlay(ProcId p, Cost earliest, Cost duration,
                        const std::vector<std::pair<Cost, Cost>>& overlay) {
    Cost candidate = std::max(earliest, 0.0);
    for (int guard = 0; guard < 64; ++guard) {
      Cost from_sched = sched_.earliest_gap(p, candidate, duration);
      Cost adjusted = from_sched;
      for (const auto& [s, f] : overlay) {
        if (s < adjusted + duration && adjusted < f) adjusted = f;
      }
      if (adjusted == from_sched) return adjusted;
      candidate = adjusted;
    }
    return candidate;  // pathological overlays; still feasible upward
  }

  // Arrival time of predecessor u's data at processor p using committed
  // instances plus a possible tentative duplicate finish time.
  Cost arrival(TaskId u, ProcId p, const Adj& edge,
               const std::vector<std::pair<TaskId, Cost>>& dups) {
    Cost best = kInfiniteTime;
    for (const Placement& pl : sched_.instances(u))
      best = std::min(best, pl.finish + (pl.proc == p ? 0.0 : edge.comm));
    for (auto [dup_task, dup_start] : dups)
      if (dup_task == u) best = std::min(best, dup_start + g_.comp(u));
    return best;
  }

  Candidate evaluate(TaskId t, ProcId p) {
    Candidate c;
    std::vector<std::pair<Cost, Cost>> overlay;  // tentative busy intervals

    auto data_ready = [&]() {
      Cost ready = 0.0;
      for (const Adj& a : g_.predecessors(t))
        ready = std::max(ready, arrival(a.node, p, a, c.dups));
      return ready;
    };

    c.start = gap_with_overlay(p, data_ready(), g_.comp(t), overlay);

    // Greedy critical-parent duplication: while the start is dominated by a
    // message from a parent with no instance on p, try copying that parent
    // into p's idle time (fed by its own committed instances only).
    for (std::size_t round = 0; round < g_.in_degree(t); ++round) {
      // Find the parent whose arrival equals the data-ready time.
      TaskId critical = kInvalidTask;
      Cost ready = 0.0;
      const Adj* critical_edge = nullptr;
      for (const Adj& a : g_.predecessors(t)) {
        Cost arr = arrival(a.node, p, a, c.dups);
        if (arr > ready) {
          ready = arr;
          critical = a.node;
          critical_edge = &a;
        }
      }
      // Duplication only helps while the start is message-bound: if the
      // task could start strictly later than its data-ready time, the
      // processor (not a message) is the bottleneck.
      if (critical == kInvalidTask || ready < c.start) break;
      (void)critical_edge;
      // Already local (or already duplicated)? Nothing to gain.
      if (sched_.instance_on(critical, p) != nullptr) break;
      bool already_dup = false;
      for (auto [dt, ds] : c.dups)
        if (dt == critical) already_dup = true;
      if (already_dup) break;

      // The duplicate is fed by committed instances of ITS predecessors.
      Cost dup_ready = sched_.data_ready(g_, critical, p);
      Cost dup_start =
          gap_with_overlay(p, dup_ready, g_.comp(critical), overlay);
      std::vector<std::pair<TaskId, Cost>> trial = c.dups;
      trial.emplace_back(critical, dup_start);

      // Recompute t's start with the duplicate in place.
      Cost new_ready = 0.0;
      for (const Adj& a : g_.predecessors(t))
        new_ready = std::max(new_ready, arrival(a.node, p, a, trial));
      std::vector<std::pair<Cost, Cost>> trial_overlay = overlay;
      trial_overlay.emplace_back(dup_start, dup_start + g_.comp(critical));
      Cost new_start =
          gap_with_overlay(p, new_ready, g_.comp(t), trial_overlay);

      if (new_start < c.start) {
        c.start = new_start;
        c.dups = std::move(trial);
        overlay = std::move(trial_overlay);
      } else {
        break;  // duplication no longer pays off
      }
    }
    return c;
  }

  const TaskGraph& g_;
  ProcId num_procs_;
  DupSchedule sched_;
};

}  // namespace

DupSchedule DupScheduler::run(const TaskGraph& g, ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "DUP: at least one processor required");
  DupEngine engine(g, num_procs);
  return engine.run();
}

}  // namespace flb
