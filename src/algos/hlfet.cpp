#include "flb/algos/hlfet.hpp"

#include <tuple>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/sched/tentative.hpp"
#include "flb/util/error.hpp"
#include "flb/util/indexed_heap.hpp"

namespace flb {

Schedule HlfetScheduler::run(const TaskGraph& g, ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "HLFET: at least one processor required");
  const TaskId n = g.num_tasks();
  Schedule sched(num_procs, n);
  std::vector<Cost> sl = computation_bottom_levels(g);

  using Key = std::tuple<Cost, TaskId>;  // (-static level, id)
  IndexedMinHeap<Key> ready(n);
  std::vector<std::size_t> unscheduled_preds(n);
  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) ready.push(t, {-sl[t], t});
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    TaskId t = static_cast<TaskId>(ready.pop());
    auto [p, est] = best_proc_exhaustive(g, sched, t);
    sched.assign(t, p, est, est + g.comp(t));
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0)
        ready.push(a.node, {-sl[a.node], a.node});
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

}  // namespace flb
