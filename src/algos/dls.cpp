#include "flb/algos/dls.hpp"

#include <algorithm>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/util/error.hpp"

namespace flb {

namespace {

// Same cached ready-task quantities as ETF (see etf.cpp): EMT(t,p) equals
// LMT(t) on every processor except the enabling one.
struct ReadyTask {
  TaskId task;
  Cost lmt;
  Cost emt_on_ep;
  ProcId ep;
};

}  // namespace

Schedule DlsScheduler::run(const TaskGraph& g, ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "DLS: at least one processor required");
  const TaskId n = g.num_tasks();
  Schedule sched(num_procs, n);
  std::vector<Cost> sl = computation_bottom_levels(g);

  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<ReadyTask> ready;
  ready.reserve(n);

  auto make_ready = [&](TaskId t) {
    ReadyTask r{t, 0.0, 0.0, kInvalidProc};
    for (const Adj& a : g.predecessors(t)) {
      Cost arrival = sched.finish(a.node) + a.comm;
      if (arrival > r.lmt || r.ep == kInvalidProc) {
        r.lmt = arrival;
        r.ep = sched.proc(a.node);
      }
    }
    for (const Adj& a : g.predecessors(t)) {
      if (sched.proc(a.node) == r.ep) continue;
      r.emt_on_ep = std::max(r.emt_on_ep, sched.finish(a.node) + a.comm);
    }
    ready.push_back(r);
  };

  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) make_ready(t);
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    std::size_t best_idx = 0;
    ProcId best_proc = 0;
    Cost best_dl = -kInfiniteTime;
    Cost best_est = 0.0;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const ReadyTask& r = ready[i];
      for (ProcId p = 0; p < num_procs; ++p) {
        Cost emt = (p == r.ep) ? r.emt_on_ep : r.lmt;
        Cost est = std::max(emt, sched.proc_ready_time(p));
        Cost dl = sl[r.task] - est;
        bool better = dl > best_dl;
        if (!better && dl == best_dl) {
          const ReadyTask& b = ready[best_idx];
          better = r.task < b.task || (r.task == b.task && p < best_proc);
        }
        if (better) {
          best_dl = dl;
          best_est = est;
          best_idx = i;
          best_proc = p;
        }
      }
    }

    TaskId t = ready[best_idx].task;
    sched.assign(t, best_proc, best_est, best_est + g.comp(t));
    ready[best_idx] = ready.back();
    ready.pop_back();
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0) make_ready(a.node);
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

Schedule DlsScheduler::run_on(const TaskGraph& g, platform::CostModel& model) {
  const ProcId num_procs = model.num_procs();
  const TaskId n = g.num_tasks();
  Schedule sched(num_procs, n);
  std::vector<Cost> sl = computation_bottom_levels(g);
  const bool link_busy = model.mode() == platform::CommMode::kLinkBusy;

  std::vector<std::size_t> unscheduled_preds(n);
  std::vector<TaskId> ready;
  ready.reserve(n);

  // Exhaustive model pricing, as in EtfScheduler::run_on; the dynamic
  // level trades the model-priced EST against the task's static level.
  auto est_on = [&](TaskId t, ProcId p) -> Cost {
    Cost est = std::max(sched.proc_ready_time(p), model.admission(p));
    for (const Adj& a : g.predecessors(t))
      est = std::max(est, model.arrival(sched.proc(a.node), p, a.comm,
                                        sched.finish(a.node)));
    return est;
  };

  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) ready.push_back(t);
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    std::size_t best_idx = 0;
    ProcId best_proc = kInvalidProc;
    Cost best_dl = -kInfiniteTime;
    Cost best_est = 0.0;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      const TaskId t = ready[i];
      for (ProcId p = 0; p < num_procs; ++p) {
        if (!model.alive(p)) continue;
        const Cost est = est_on(t, p);
        const Cost dl = sl[t] - est;
        bool better = dl > best_dl || best_proc == kInvalidProc;
        if (!better && dl == best_dl) {
          const TaskId b = ready[best_idx];
          better = t < b || (t == b && p < best_proc);
        }
        if (better) {
          best_dl = dl;
          best_est = est;
          best_idx = i;
          best_proc = p;
        }
      }
    }
    FLB_ASSERT(best_proc != kInvalidProc);

    const TaskId t = ready[best_idx];
    Cost start = best_est;
    if (link_busy) {
      start = std::max(sched.proc_ready_time(best_proc),
                       model.admission(best_proc));
      for (const Adj& a : g.predecessors(t))
        start = std::max(start,
                         model.commit_arrival(sched.proc(a.node), best_proc,
                                              a.comm, sched.finish(a.node)));
    }
    sched.assign(t, best_proc, start, start + model.exec(g, t, best_proc, 0.0));
    ready[best_idx] = ready.back();
    ready.pop_back();
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0) ready.push_back(a.node);
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

}  // namespace flb
