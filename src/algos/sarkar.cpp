#include "flb/algos/sarkar.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/indexed_heap.hpp"

namespace flb {

namespace {

/// Union-find over task ids representing the evolving clusters.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Unbounded-processor list schedule of g under a clustering given by
/// representative ids: tasks ordered by descending bottom level, each
/// placed on its cluster's "processor"; intra-cluster communication is
/// free. Fills start/finish if out-parameters are given; returns the
/// schedule length.
Cost evaluate(const TaskGraph& g, UnionFind& uf, const std::vector<Cost>& bl,
              std::vector<Cost>* start_out, std::vector<Cost>* finish_out) {
  const TaskId n = g.num_tasks();
  std::vector<Cost> start(n, 0.0), finish(n, 0.0);
  // Cluster ready time, keyed by representative task id.
  std::vector<Cost> cluster_ready(n, 0.0);

  using Key = std::tuple<Cost, TaskId>;  // (-bottom level, id)
  IndexedMinHeap<Key> ready(n);
  std::vector<std::size_t> unscheduled_preds(n);
  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) ready.push(t, {-bl[t], t});
  }

  Cost makespan = 0.0;
  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    TaskId t = static_cast<TaskId>(ready.pop());
    std::size_t c = uf.find(t);
    Cost est = cluster_ready[c];
    for (const Adj& a : g.predecessors(t)) {
      Cost comm = uf.find(a.node) == c ? 0.0 : a.comm;
      est = std::max(est, finish[a.node] + comm);
    }
    start[t] = est;
    finish[t] = est + g.comp(t);
    cluster_ready[c] = finish[t];
    makespan = std::max(makespan, finish[t]);
    for (const Adj& a : g.successors(t))
      if (--unscheduled_preds[a.node] == 0)
        ready.push(a.node, {-bl[a.node], a.node});
  }
  if (start_out) *start_out = std::move(start);
  if (finish_out) *finish_out = std::move(finish);
  return makespan;
}

}  // namespace

Clustering sarkar_cluster(const TaskGraph& g) {
  const TaskId n = g.num_tasks();
  Clustering result;
  result.cluster_of.assign(n, 0);
  result.start.assign(n, 0.0);
  result.finish.assign(n, 0.0);
  if (n == 0) return result;

  std::vector<Cost> bl = bottom_levels(g);
  UnionFind uf(n);

  // Edges by descending communication cost (ties: endpoint ids).
  std::vector<Edge> edges = g.edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return std::tuple(-a.comm, a.from, a.to) <
           std::tuple(-b.comm, b.from, b.to);
  });

  Cost current = evaluate(g, uf, bl, nullptr, nullptr);
  for (const Edge& e : edges) {
    std::size_t cu = uf.find(e.from), cv = uf.find(e.to);
    if (cu == cv) continue;  // already zeroed transitively
    // Tentative merge; revert if the schedule length grows. Union-find
    // path compression makes a true revert awkward, so merge on a copy.
    UnionFind trial = uf;
    trial.unite(cu, cv);
    Cost merged = evaluate(g, trial, bl, nullptr, nullptr);
    if (merged <= current) {
      uf = std::move(trial);
      current = merged;
    }
  }

  // Final evaluation with times, then relabel clusters densely in order of
  // first appearance.
  (void)evaluate(g, uf, bl, &result.start, &result.finish);
  std::vector<ClusterId> label(n, kInvalidTask);
  ClusterId next = 0;
  for (TaskId t = 0; t < n; ++t) {
    std::size_t rep = uf.find(t);
    if (label[rep] == kInvalidTask) label[rep] = next++;
    result.cluster_of[t] = label[rep];
  }
  result.num_clusters = next;

  // Member lists in execution (start-time) order.
  result.members.assign(next, {});
  std::vector<TaskId> by_start(n);
  std::iota(by_start.begin(), by_start.end(), 0);
  std::sort(by_start.begin(), by_start.end(), [&](TaskId a, TaskId b) {
    return std::tuple(result.start[a], a) < std::tuple(result.start[b], b);
  });
  for (TaskId t : by_start) result.members[result.cluster_of[t]].push_back(t);
  return result;
}

}  // namespace flb
