#include "flb/algos/fcp.hpp"

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/util/indexed_heap.hpp"

namespace flb {

Schedule FcpScheduler::run(const TaskGraph& g, ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "FCP: at least one processor required");
  const TaskId n = g.num_tasks();
  Schedule sched(num_procs, n);
  std::vector<Cost> bl = bottom_levels(g);

  // Ready tasks by descending static priority (bottom level).
  using TaskKey = std::tuple<Cost, TaskId>;  // (-bottom level, id)
  IndexedMinHeap<TaskKey> ready(n);
  // Processors by ascending ready time.
  using ProcKey = std::pair<Cost, ProcId>;
  IndexedMinHeap<ProcKey> procs(num_procs);
  for (ProcId p = 0; p < num_procs; ++p) procs.push(p, {0.0, p});

  std::vector<std::size_t> unscheduled_preds(n);
  for (TaskId t = 0; t < n; ++t) {
    unscheduled_preds[t] = g.in_degree(t);
    if (unscheduled_preds[t] == 0) ready.push(t, {-bl[t], t});
  }

  for (TaskId step = 0; step < n; ++step) {
    FLB_ASSERT(!ready.empty());
    TaskId t = static_cast<TaskId>(ready.pop());

    // The two-processor rule: the task's minimum start time is attained
    // either on its enabling processor or on the earliest-idle processor.
    Cost lmt = 0.0, emt_on_ep = 0.0;
    ProcId ep = kInvalidProc;
    for (const Adj& a : g.predecessors(t)) {
      Cost arrival = sched.finish(a.node) + a.comm;
      if (arrival > lmt || ep == kInvalidProc) {
        lmt = arrival;
        ep = sched.proc(a.node);
      }
    }
    for (const Adj& a : g.predecessors(t)) {
      if (sched.proc(a.node) == ep) continue;
      emt_on_ep = std::max(emt_on_ep, sched.finish(a.node) + a.comm);
    }

    // EST on a candidate processor: messages from the enabling processor
    // are free only there (EMT(t,q) = LMT(t) for every q != EP).
    auto est_on = [&](ProcId q) {
      Cost emt = (q == ep) ? emt_on_ep : lmt;
      return std::max(emt, sched.proc_ready_time(q));
    };

    ProcId idle = static_cast<ProcId>(procs.top());
    ProcId p = idle;
    Cost est = est_on(idle);
    if (ep != kInvalidProc && ep != idle) {
      Cost est_ep = est_on(ep);
      // Strict '<': prefer the idle processor on ties (the communication
      // from the enabling processor is then already overlapped).
      if (est_ep < est) {
        p = ep;
        est = est_ep;
      }
    }

    sched.assign(t, p, est, est + g.comp(t));
    procs.update(p, {sched.proc_ready_time(p), p});
    for (const Adj& a : g.successors(t)) {
      if (--unscheduled_preds[a.node] == 0)
        ready.push(a.node, {-bl[a.node], a.node});
    }
  }

  FLB_ASSERT(sched.complete());
  return sched;
}

}  // namespace flb
