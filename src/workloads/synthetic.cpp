#include <cstddef>
#include <string>
#include <vector>

#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "weight_drawer.hpp"

// Synthetic task-graph families used by the unit/property tests and the
// ablation benches: random layered DAGs, unstructured random DAGs, trees,
// fork-join chains, diamond lattices, chains and independent task sets.

namespace flb {

TaskGraph random_layered_graph(std::size_t layers, std::size_t width,
                               double edge_prob,
                               const WorkloadParams& params) {
  FLB_REQUIRE(layers >= 1, "random_layered_graph: layers must be positive");
  FLB_REQUIRE(width >= 1, "random_layered_graph: width must be positive");
  FLB_REQUIRE(edge_prob >= 0.0 && edge_prob <= 1.0,
              "random_layered_graph: edge_prob must be in [0, 1]");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("RandomLayered(l=" + std::to_string(layers) +
             ",w=" + std::to_string(width) + ")");

  auto id = [width](std::size_t l, std::size_t i) {
    return static_cast<TaskId>(l * width + i);
  };

  for (std::size_t i = 0; i < layers * width; ++i) b.add_task(w.comp());

  for (std::size_t l = 1; l < layers; ++l) {
    for (std::size_t i = 0; i < width; ++i) {
      bool has_parent = false;
      for (std::size_t j = 0; j < width; ++j) {
        if (w.rng().bernoulli(edge_prob)) {
          b.add_edge(id(l - 1, j), id(l, i), w.comm());
          has_parent = true;
        }
      }
      if (!has_parent) {
        // Guarantee depth = layers: connect to a random previous-layer task.
        std::size_t j = static_cast<std::size_t>(w.rng().next_below(width));
        b.add_edge(id(l - 1, j), id(l, i), w.comm());
      }
    }
  }
  return std::move(b).build();
}

TaskGraph random_dag(std::size_t tasks, double edge_prob,
                     const WorkloadParams& params) {
  FLB_REQUIRE(tasks >= 1, "random_dag: tasks must be positive");
  FLB_REQUIRE(edge_prob >= 0.0 && edge_prob <= 1.0,
              "random_dag: edge_prob must be in [0, 1]");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("RandomDag(v=" + std::to_string(tasks) + ")");

  for (std::size_t i = 0; i < tasks; ++i) b.add_task(w.comp());
  for (std::size_t i = 0; i < tasks; ++i)
    for (std::size_t j = i + 1; j < tasks; ++j)
      if (w.rng().bernoulli(edge_prob))
        b.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(j), w.comm());
  return std::move(b).build();
}

TaskGraph series_parallel_graph(std::size_t target_tasks,
                                double parallel_prob,
                                const WorkloadParams& params) {
  FLB_REQUIRE(target_tasks >= 2,
              "series_parallel_graph: at least two tasks required");
  FLB_REQUIRE(parallel_prob >= 0.0 && parallel_prob <= 1.0,
              "series_parallel_graph: parallel_prob must be in [0, 1]");
  detail::WeightDrawer w(params);
  Rng& rng = w.rng();

  // Grow the edge set: every operation consumes one random edge and adds
  // one fresh node, so node count = 2 + operations and no duplicate edges
  // can ever arise (every new edge touches the fresh node).
  std::vector<std::pair<TaskId, TaskId>> edges{{0, 1}};
  TaskId next_node = 2;
  while (next_node < target_tasks) {
    std::size_t pick = static_cast<std::size_t>(rng.next_below(edges.size()));
    auto [u, v] = edges[pick];
    TaskId mid = next_node++;
    if (rng.bernoulli(parallel_prob)) {
      // Parallel: a second u -> mid -> v path next to the existing edge.
      edges.emplace_back(u, mid);
      edges.emplace_back(mid, v);
    } else {
      // Series: split the edge through the new node.
      edges[pick] = {u, mid};
      edges.emplace_back(mid, v);
    }
  }

  TaskGraphBuilder b;
  b.set_name("SeriesParallel(v=" + std::to_string(next_node) + ")");
  for (TaskId t = 0; t < next_node; ++t) b.add_task(w.comp());
  for (auto [u, v] : edges) b.add_edge(u, v, w.comm());
  return std::move(b).build();
}

TaskGraph out_tree_graph(std::size_t depth, std::size_t fanout,
                         const WorkloadParams& params) {
  FLB_REQUIRE(depth >= 1, "out_tree_graph: depth must be positive");
  FLB_REQUIRE(fanout >= 1, "out_tree_graph: fanout must be positive");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("OutTree(d=" + std::to_string(depth) +
             ",f=" + std::to_string(fanout) + ")");

  // Level l has fanout^l nodes; ids assigned level by level.
  std::vector<std::size_t> level_start(depth + 1, 0);
  std::size_t level_size = 1;
  for (std::size_t l = 0; l < depth; ++l) {
    level_start[l + 1] = level_start[l] + level_size;
    for (std::size_t i = 0; i < level_size; ++i) b.add_task(w.comp());
    level_size *= fanout;
  }
  level_size = 1;
  for (std::size_t l = 0; l + 1 < depth; ++l) {
    for (std::size_t i = 0; i < level_size; ++i) {
      for (std::size_t c = 0; c < fanout; ++c) {
        b.add_edge(static_cast<TaskId>(level_start[l] + i),
                   static_cast<TaskId>(level_start[l + 1] + i * fanout + c),
                   w.comm());
      }
    }
    level_size *= fanout;
  }
  return std::move(b).build();
}

TaskGraph in_tree_graph(std::size_t depth, std::size_t fanout,
                        const WorkloadParams& params) {
  FLB_REQUIRE(depth >= 1, "in_tree_graph: depth must be positive");
  FLB_REQUIRE(fanout >= 1, "in_tree_graph: fanout must be positive");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("InTree(d=" + std::to_string(depth) +
             ",f=" + std::to_string(fanout) + ")");

  // Level 0 is the widest (leaves), the last level is the single root.
  std::vector<std::size_t> level_size(depth);
  level_size[depth - 1] = 1;
  for (std::size_t l = depth - 1; l > 0; --l)
    level_size[l - 1] = level_size[l] * fanout;
  std::vector<std::size_t> level_start(depth + 1, 0);
  for (std::size_t l = 0; l < depth; ++l) {
    level_start[l + 1] = level_start[l] + level_size[l];
    for (std::size_t i = 0; i < level_size[l]; ++i) b.add_task(w.comp());
  }
  for (std::size_t l = 0; l + 1 < depth; ++l) {
    for (std::size_t i = 0; i < level_size[l]; ++i) {
      b.add_edge(static_cast<TaskId>(level_start[l] + i),
                 static_cast<TaskId>(level_start[l + 1] + i / fanout),
                 w.comm());
    }
  }
  return std::move(b).build();
}

TaskGraph fork_join_graph(std::size_t stages, std::size_t width,
                          const WorkloadParams& params) {
  FLB_REQUIRE(stages >= 1, "fork_join_graph: stages must be positive");
  FLB_REQUIRE(width >= 1, "fork_join_graph: width must be positive");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("ForkJoin(stages=" + std::to_string(stages) +
             ",w=" + std::to_string(width) + ")");

  // Stage: fork task, `width` parallel tasks, join task; the join doubles
  // as the next stage's fork source.
  TaskId prev_join = b.add_task(w.comp());
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<TaskId> mids(width);
    for (std::size_t i = 0; i < width; ++i) mids[i] = b.add_task(w.comp());
    TaskId join = b.add_task(w.comp());
    for (TaskId mid : mids) {
      b.add_edge(prev_join, mid, w.comm());
      b.add_edge(mid, join, w.comm());
    }
    prev_join = join;
  }
  return std::move(b).build();
}

TaskGraph diamond_graph(std::size_t side, const WorkloadParams& params) {
  FLB_REQUIRE(side >= 1, "diamond_graph: side must be positive");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("Diamond(side=" + std::to_string(side) + ")");

  auto id = [side](std::size_t i, std::size_t j) {
    return static_cast<TaskId>(i * side + j);
  };
  for (std::size_t i = 0; i < side * side; ++i) b.add_task(w.comp());
  for (std::size_t i = 0; i < side; ++i) {
    for (std::size_t j = 0; j < side; ++j) {
      if (i > 0) b.add_edge(id(i - 1, j), id(i, j), w.comm());
      if (j > 0) b.add_edge(id(i, j - 1), id(i, j), w.comm());
    }
  }
  return std::move(b).build();
}

TaskGraph chain_graph(std::size_t length, const WorkloadParams& params) {
  FLB_REQUIRE(length >= 1, "chain_graph: length must be positive");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("Chain(len=" + std::to_string(length) + ")");
  for (std::size_t i = 0; i < length; ++i) b.add_task(w.comp());
  for (std::size_t i = 1; i < length; ++i)
    b.add_edge(static_cast<TaskId>(i - 1), static_cast<TaskId>(i), w.comm());
  return std::move(b).build();
}

TaskGraph independent_graph(std::size_t count, const WorkloadParams& params) {
  FLB_REQUIRE(count >= 1, "independent_graph: count must be positive");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("Independent(v=" + std::to_string(count) + ")");
  for (std::size_t i = 0; i < count; ++i) b.add_task(w.comp());
  return std::move(b).build();
}

}  // namespace flb
