#include <cstddef>
#include <string>
#include <vector>

#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "weight_drawer.hpp"

// Generators for the paper's application workloads: LU, Laplace, Stencil,
// FFT and the Gauss variant. Task ids are assigned in a deterministic
// row-major / stage-major order so that graphs are reproducible and easy to
// cross-check in tests.

namespace flb {

TaskGraph lu_graph(std::size_t n, const WorkloadParams& params) {
  FLB_REQUIRE(n >= 2, "lu_graph: matrix dimension must be at least 2");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("LU(n=" + std::to_string(n) + ")");

  // Step k in 0..n-2 owns 1 pivot task and n-1-k update tasks. Offset of
  // step k = sum_{i<k} (n - i) = k*n - k(k-1)/2.
  auto offset = [n](std::size_t k) { return k * n - k * (k - 1) / 2; };
  auto pivot = [&](std::size_t k) {
    return static_cast<TaskId>(offset(k));
  };
  auto update = [&](std::size_t k, std::size_t j) {
    return static_cast<TaskId>(offset(k) + (j - k));
  };

  const std::size_t v = n * (n + 1) / 2 - 1;
  for (std::size_t i = 0; i < v; ++i) b.add_task(w.comp());

  for (std::size_t k = 0; k + 1 < n; ++k) {
    for (std::size_t j = k + 1; j < n; ++j)
      b.add_edge(pivot(k), update(k, j), w.comm());
    if (k >= 1) {
      b.add_edge(update(k - 1, k), pivot(k), w.comm());
      for (std::size_t j = k + 1; j < n; ++j)
        b.add_edge(update(k - 1, j), update(k, j), w.comm());
    }
  }
  return std::move(b).build();
}

TaskGraph laplace_graph(std::size_t m, std::size_t iters,
                        const WorkloadParams& params) {
  FLB_REQUIRE(m >= 2, "laplace_graph: grid side must be at least 2");
  FLB_REQUIRE(iters >= 1, "laplace_graph: at least one iteration required");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("Laplace(m=" + std::to_string(m) +
             ",iters=" + std::to_string(iters) + ")");

  // Sweep `it` owns m*m point tasks followed by one convergence check.
  const std::size_t sweep_size = m * m + 1;
  auto id = [&](std::size_t it, std::size_t i, std::size_t j) {
    return static_cast<TaskId>(it * sweep_size + i * m + j);
  };
  auto check = [&](std::size_t it) {
    return static_cast<TaskId>(it * sweep_size + m * m);
  };

  for (std::size_t i = 0; i < sweep_size * iters; ++i) b.add_task(w.comp());

  for (std::size_t it = 0; it < iters; ++it) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        if (it > 0) {
          // Data from the previous sweep's neighbours...
          if (i > 0) b.add_edge(id(it - 1, i - 1, j), id(it, i, j), w.comm());
          if (i + 1 < m)
            b.add_edge(id(it - 1, i + 1, j), id(it, i, j), w.comm());
          if (j > 0) b.add_edge(id(it - 1, i, j - 1), id(it, i, j), w.comm());
          if (j + 1 < m)
            b.add_edge(id(it - 1, i, j + 1), id(it, i, j), w.comm());
          // ...plus the continue/stop decision of the previous sweep.
          b.add_edge(check(it - 1), id(it, i, j), w.comm());
        }
        // Every point reports its residual to this sweep's check.
        b.add_edge(id(it, i, j), check(it), w.comm());
      }
    }
  }
  return std::move(b).build();
}

TaskGraph stencil_graph(std::size_t width, std::size_t steps,
                        const WorkloadParams& params) {
  FLB_REQUIRE(width >= 1, "stencil_graph: width must be positive");
  FLB_REQUIRE(steps >= 1, "stencil_graph: steps must be positive");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("Stencil(w=" + std::to_string(width) +
             ",steps=" + std::to_string(steps) + ")");

  auto id = [width](std::size_t s, std::size_t i) {
    return static_cast<TaskId>(s * width + i);
  };

  for (std::size_t i = 0; i < width * steps; ++i) b.add_task(w.comp());

  for (std::size_t s = 1; s < steps; ++s) {
    for (std::size_t i = 0; i < width; ++i) {
      if (i > 0) b.add_edge(id(s - 1, i - 1), id(s, i), w.comm());
      b.add_edge(id(s - 1, i), id(s, i), w.comm());
      if (i + 1 < width) b.add_edge(id(s - 1, i + 1), id(s, i), w.comm());
    }
  }
  return std::move(b).build();
}

TaskGraph fft_graph(std::size_t points, const WorkloadParams& params) {
  FLB_REQUIRE(points >= 2 && (points & (points - 1)) == 0,
              "fft_graph: points must be a power of two >= 2");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("FFT(points=" + std::to_string(points) + ")");

  std::size_t stages = 0;
  for (std::size_t v = points; v > 1; v >>= 1) ++stages;

  auto id = [points](std::size_t s, std::size_t i) {
    return static_cast<TaskId>(s * points + i);
  };

  for (std::size_t i = 0; i < points * (stages + 1); ++i) b.add_task(w.comp());

  for (std::size_t s = 1; s <= stages; ++s) {
    const std::size_t stride = std::size_t{1} << (s - 1);
    for (std::size_t i = 0; i < points; ++i) {
      b.add_edge(id(s - 1, i), id(s, i), w.comm());
      b.add_edge(id(s - 1, i ^ stride), id(s, i), w.comm());
    }
  }
  return std::move(b).build();
}

TaskGraph cholesky_graph(std::size_t tiles, const WorkloadParams& params) {
  FLB_REQUIRE(tiles >= 1, "cholesky_graph: at least one tile required");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("Cholesky(T=" + std::to_string(tiles) + ")");

  const TaskId invalid = kInvalidTask;
  // Task ids per kernel instance, allocated on first use.
  std::vector<TaskId> potrf(tiles, invalid);
  auto tri = [tiles](std::size_t i, std::size_t k) {
    // Index into a lower-triangular (i > k) table.
    return i * tiles + k;
  };
  std::vector<TaskId> trsm(tiles * tiles, invalid);
  std::vector<TaskId> syrk(tiles * tiles, invalid);

  // Allocate every task first (deterministic ids: kernels in step order).
  for (std::size_t k = 0; k < tiles; ++k) {
    potrf[k] = b.add_task(w.comp());
    for (std::size_t i = k + 1; i < tiles; ++i) trsm[tri(i, k)] = b.add_task(w.comp());
    for (std::size_t i = k + 1; i < tiles; ++i) syrk[tri(i, k)] = b.add_task(w.comp());
  }
  // GEMM tasks are created inline during the edge pass; TRSM(i,j) later
  // joins every GEMM(i,j,k) with k < j, collected per (i,j) tile here.
  std::vector<std::vector<TaskId>> gemm_updates(tiles * tiles);

  for (std::size_t k = 0; k < tiles; ++k) {
    // POTRF(k) joins the SYRK updates of column < k on the diagonal tile.
    for (std::size_t j = 0; j < k; ++j)
      b.add_edge(syrk[tri(k, j)], potrf[k], w.comm());
    for (std::size_t i = k + 1; i < tiles; ++i) {
      // TRSM(i,k): needs the factored diagonal and all GEMM updates of
      // tile (i,k).
      b.add_edge(potrf[k], trsm[tri(i, k)], w.comm());
      for (TaskId gm : gemm_updates[tri(i, k)])
        b.add_edge(gm, trsm[tri(i, k)], w.comm());
      // SYRK(i,k): diagonal-tile update from the panel tile.
      b.add_edge(trsm[tri(i, k)], syrk[tri(i, k)], w.comm());
    }
    // GEMM(i,j,k) for k < j < i: off-diagonal trailing updates.
    for (std::size_t i = k + 1; i < tiles; ++i) {
      for (std::size_t j = k + 1; j < i; ++j) {
        TaskId gm = b.add_task(w.comp());
        b.add_edge(trsm[tri(i, k)], gm, w.comm());
        b.add_edge(trsm[tri(j, k)], gm, w.comm());
        gemm_updates[tri(i, j)].push_back(gm);
      }
    }
  }
  return std::move(b).build();
}

TaskGraph gauss_graph(std::size_t n, const WorkloadParams& params) {
  FLB_REQUIRE(n >= 2, "gauss_graph: matrix dimension must be at least 2");
  detail::WeightDrawer w(params);
  TaskGraphBuilder b;
  b.set_name("Gauss(n=" + std::to_string(n) + ")");

  auto offset = [n](std::size_t k) { return k * n - k * (k - 1) / 2; };
  auto pivot = [&](std::size_t k) {
    return static_cast<TaskId>(offset(k));
  };
  auto update = [&](std::size_t k, std::size_t j) {
    return static_cast<TaskId>(offset(k) + (j - k));
  };

  const std::size_t v = n * (n + 1) / 2 - 1;
  for (std::size_t i = 0; i < v; ++i) b.add_task(w.comp());

  for (std::size_t k = 0; k + 1 < n; ++k) {
    for (std::size_t j = k + 1; j < n; ++j) {
      // Pivot selection fans out to every row update of the step...
      b.add_edge(pivot(k), update(k, j), w.comm());
      // ...and the next pivot search joins on all of them (partial
      // pivoting scans every updated row).
      if (k + 2 < n) b.add_edge(update(k, j), pivot(k + 1), w.comm());
    }
  }
  return std::move(b).build();
}

}  // namespace flb
