#pragma once

#include "flb/util/rng.hpp"
#include "flb/workloads/workloads.hpp"

/// \file weight_drawer.hpp
/// Internal helper shared by the workload generators: draws computation and
/// communication costs according to WorkloadParams (uniform with means 1
/// and CCR, or deterministic).

namespace flb::detail {

class WeightDrawer {
 public:
  explicit WeightDrawer(const WorkloadParams& params)
      : params_(params), rng_(params.seed) {}

  Cost comp() {
    return params_.random_weights ? draw_weight(rng_, 1.0) : 1.0;
  }

  Cost comm() {
    return params_.random_weights ? draw_weight(rng_, params_.ccr)
                                  : params_.ccr;
  }

  Rng& rng() { return rng_; }

 private:
  WorkloadParams params_;
  Rng rng_;
};

}  // namespace flb::detail
