#include <cmath>
#include <cstddef>

#include "flb/util/error.hpp"
#include "flb/util/rng.hpp"
#include "flb/workloads/workloads.hpp"

// Size-targeted workload construction for the benchmark harness. The paper
// adjusts each problem's structural size so its task graph has about
// V = 2000 nodes; these helpers invert each family's V formula.

namespace flb {

namespace {

// n with n(n+1)/2 - 1 closest to target from below (never overshooting by
// a whole diagonal): n = floor((-1 + sqrt(1 + 8(target+1))) / 2).
std::size_t matrix_dim_for(std::size_t target) {
  double n = (-1.0 + std::sqrt(1.0 + 8.0 * (static_cast<double>(target) + 1))) / 2.0;
  return std::max<std::size_t>(2, static_cast<std::size_t>(std::llround(n)));
}

}  // namespace

TaskGraph perturb_weights(const TaskGraph& g, double spread,
                          std::uint64_t seed) {
  FLB_REQUIRE(spread >= 0.0 && spread < 1.0,
              "perturb_weights: spread must be in [0, 1)");
  Rng rng(seed);
  TaskGraphBuilder b;
  b.set_name(g.name());
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    b.add_task(g.comp(t) * rng.uniform(1.0 - spread, 1.0 + spread));
  for (const Edge& e : g.edges())
    b.add_edge(e.from, e.to,
               e.comm * rng.uniform(1.0 - spread, 1.0 + spread));
  return std::move(b).build();
}

std::vector<std::string> workload_names() {
  return {"LU", "Laplace", "Stencil", "FFT", "Gauss", "Cholesky", "Random"};
}

TaskGraph make_workload(const std::string& name, std::size_t target_tasks,
                        const WorkloadParams& params) {
  FLB_REQUIRE(target_tasks >= 8, "make_workload: target_tasks too small");
  if (name == "LU") {
    return lu_graph(matrix_dim_for(target_tasks), params);
  }
  if (name == "Gauss") {
    return gauss_graph(matrix_dim_for(target_tasks), params);
  }
  if (name == "Laplace") {
    // Ten sweeps of an m x m grid plus one check per sweep:
    // V = 10 (m^2 + 1).
    const std::size_t iters = 10;
    double per_sweep =
        static_cast<double>(target_tasks) / static_cast<double>(iters) - 1.0;
    auto m = static_cast<std::size_t>(
        std::llround(std::sqrt(std::max(4.0, per_sweep))));
    return laplace_graph(std::max<std::size_t>(2, m), iters, params);
  }
  if (name == "Stencil") {
    // Roughly square space-time extent: V = width * steps.
    auto width = static_cast<std::size_t>(
        std::llround(std::sqrt(static_cast<double>(target_tasks))));
    width = std::max<std::size_t>(1, width);
    auto steps = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(target_tasks) / static_cast<double>(width))));
    return stencil_graph(width, steps, params);
  }
  if (name == "FFT") {
    // Pick the power of two whose V = points * (log2(points) + 1) is
    // closest to the target.
    std::size_t best_points = 2;
    std::size_t best_diff = static_cast<std::size_t>(-1);
    for (std::size_t points = 2; points <= (std::size_t{1} << 24);
         points <<= 1) {
      std::size_t stages = 0;
      for (std::size_t v = points; v > 1; v >>= 1) ++stages;
      std::size_t v = points * (stages + 1);
      std::size_t diff = v > target_tasks ? v - target_tasks : target_tasks - v;
      if (diff < best_diff) {
        best_diff = diff;
        best_points = points;
      }
      if (v > 4 * target_tasks) break;
    }
    return fft_graph(best_points, params);
  }
  if (name == "Cholesky") {
    // V(T) = T + T(T-1) + sum_{k} C(T-1-k, 2) ~ T^3/6 + T^2/2; pick the T
    // whose count lands closest to the target.
    std::size_t best_t = 1, best_diff = static_cast<std::size_t>(-1);
    for (std::size_t t = 1; t <= 200; ++t) {
      std::size_t v = t + t * (t - 1);
      for (std::size_t k = 0; k + 2 < t; ++k)
        v += (t - 1 - k) * (t - 2 - k) / 2;
      std::size_t diff = v > target_tasks ? v - target_tasks : target_tasks - v;
      if (diff < best_diff) {
        best_diff = diff;
        best_t = t;
      }
      if (v > 4 * target_tasks) break;
    }
    return cholesky_graph(best_t, params);
  }
  if (name == "Random") {
    auto width = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               std::sqrt(static_cast<double>(target_tasks) / 2.0))));
    auto layers = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               static_cast<double>(target_tasks) / static_cast<double>(width))));
    return random_layered_graph(layers, width, 0.3, params);
  }
  FLB_REQUIRE(false, "make_workload: unknown workload '" + name + "'");
}

}  // namespace flb
