#include "flb/workloads/paper_example.hpp"

namespace flb {

TaskGraph paper_example_graph() {
  TaskGraphBuilder b;
  b.set_name("paper-fig1");
  TaskId t0 = b.add_task(2);
  TaskId t1 = b.add_task(2);
  TaskId t2 = b.add_task(2);
  TaskId t3 = b.add_task(3);
  TaskId t4 = b.add_task(3);
  TaskId t5 = b.add_task(3);
  TaskId t6 = b.add_task(2);
  TaskId t7 = b.add_task(2);
  // Insertion order fixes predecessor iteration order; t3->t5 precedes
  // t1->t5 so that the equally-late messages of t5 resolve its enabling
  // processor to t3's processor, as in the paper's trace.
  b.add_edge(t0, t1, 1);
  b.add_edge(t0, t2, 4);
  b.add_edge(t0, t3, 1);
  b.add_edge(t1, t4, 2);
  b.add_edge(t3, t5, 1);
  b.add_edge(t1, t5, 1);
  b.add_edge(t2, t6, 1);
  b.add_edge(t4, t7, 1);
  b.add_edge(t5, t7, 3);
  b.add_edge(t6, t7, 2);
  return std::move(b).build();
}

}  // namespace flb
