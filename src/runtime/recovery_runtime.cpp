#include "flb/runtime/recovery_runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "flb/analysis/lint.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/sched/export.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"

namespace flb::runtime {

// --- HorizonFaultView -------------------------------------------------------

HorizonFaultView::HorizonFaultView(const FaultPlan& world, ProcId num_procs)
    : num_procs_(num_procs), dead_(num_procs, 0) {
  FLB_REQUIRE(num_procs > 0, "HorizonFaultView: need at least one processor");
  // Configuration scalars only: the timing of faults (failures, rejoins,
  // slowdowns, domains, bursts) stays hidden until observed.
  plan_.seed = world.seed;
  plan_.checkpoint = world.checkpoint;
  plan_.message = world.message;
  plan_.runtime_spread = world.runtime_spread;
}

void HorizonFaultView::advance(Cost horizon) {
  FLB_REQUIRE(horizon >= horizon_,
              "HorizonFaultView: the observation horizon cannot move "
              "backwards");
  horizon_ = horizon;
}

bool HorizonFaultView::observed(const SimEvent& event) const {
  if (event.kind == SimEventKind::kMessageDropped &&
      dropped_.count({event.task, event.task2}) != 0)
    return true;
  return seen_.count(event.key()) != 0;
}

void HorizonFaultView::observe(const SimEvent& event) {
  FLB_REQUIRE(event.time <= horizon_,
              "HorizonFaultView: an event beyond the horizon cannot be "
              "observed — that would be future knowledge");
  if (observed(event)) return;
  seen_.insert(event.key());
  switch (event.kind) {
    case SimEventKind::kFailure:
      plan_.failures.push_back({event.proc, event.time});
      dead_[event.proc] = 1;
      break;
    case SimEventKind::kRejoin:
      plan_.rejoins.push_back({event.proc, event.time});
      dead_[event.proc] = 0;
      break;
    case SimEventKind::kSlowdownBegin:
      // Until the end is observed the throttling must be assumed permanent.
      plan_.slowdowns.push_back(
          {event.proc, event.time, event.value, kInfiniteTime});
      break;
    case SimEventKind::kSlowdownEnd: {
      // Close the earliest still-open slowdown of this processor with the
      // matching factor. The onset always precedes the end, so it has been
      // observed already (batches are consumed in time order).
      SlowdownFault* open = nullptr;
      for (SlowdownFault& f : plan_.slowdowns)
        if (f.proc == event.proc && f.factor == event.value &&
            f.until == kInfiniteTime && (open == nullptr || f.time < open->time))
          open = &f;
      FLB_REQUIRE(open != nullptr,
                  "HorizonFaultView: slowdown end without an observed onset");
      open->until = event.time;
      break;
    }
    case SimEventKind::kTaskKilled:
      break;  // payload lives in the horizon-sliced SimResult
    case SimEventKind::kMessageDropped:
      dropped_.insert({event.task, event.task2});
      break;
  }
}

ProcId HorizonFaultView::observed_alive() const {
  ProcId alive = 0;
  for (ProcId p = 0; p < num_procs_; ++p)
    if (dead_[p] == 0) ++alive;
  return alive;
}

// --- Digests ----------------------------------------------------------------

std::uint64_t fnv1a_digest(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string event_log_text(const std::vector<SimEvent>& events) {
  std::string text;
  for (const SimEvent& event : events) {
    text += to_string(event);
    text += '\n';
  }
  return text;
}

// --- The controller loop ----------------------------------------------------

namespace {

/// The slice of one simulated execution the controller is allowed to see at
/// `horizon`: placements of tasks that *finished* by then; everything else
/// (including work in flight at the horizon, whose eventual finish is not
/// yet observable) is re-planned. `checkpointed` is reconstructed from the
/// accumulated work-override bookkeeping, `dropped_edges` from the observed
/// drop events — never from the world's SimResult fields directly, which
/// embed post-horizon knowledge.
SimResult observed_slice(const TaskGraph& g, const SimResult& sim,
                         Cost horizon, const std::vector<Cost>& remaining,
                         const FaultPlan& world,
                         const HorizonFaultView& view) {
  const TaskId n = g.num_tasks();
  SimResult obs;
  obs.start.assign(n, kUndefinedTime);
  obs.finish.assign(n, kUndefinedTime);
  obs.checkpointed.assign(n, 0.0);
  for (TaskId t = 0; t < n; ++t) {
    if (sim.finish[t] != kUndefinedTime && sim.finish[t] <= horizon) {
      obs.start[t] = sim.start[t];
      obs.finish[t] = sim.finish[t];
      obs.makespan = std::max(obs.makespan, obs.finish[t]);
    } else {
      obs.unfinished.push_back(t);
    }
    // Work already durably saved for tasks resuming from a checkpoint:
    // repair subtracts this from the full (perturbed) computation, landing
    // exactly on the remainder the simulator's work override executes.
    if (remaining[t] != kUndefinedTime)
      obs.checkpointed[t] = std::max(
          0.0, g.comp(t) * runtime_factor(world, t) - remaining[t]);
  }
  for (const auto& edge : sim.dropped_edges)
    if (view.observed({0.0, SimEventKind::kMessageDropped, kInvalidProc,
                       edge.first, edge.second, 0.0}))
      obs.dropped_edges.push_back(edge);
  obs.dropped_messages = obs.dropped_edges.size();
  return obs;
}

void check_continuation(const TaskGraph& g, const RepairResult& rep,
                        ProcId procs, Cost horizon) {
  const std::vector<Violation> violations =
      validate_schedule(g, rep.schedule, rep.durations);
  FLB_REQUIRE(violations.empty(),
              "online recovery: the continuation repaired at horizon " +
                  std::to_string(horizon) + " is infeasible: " +
                  to_string(violations.front()));
  analysis::LintOptions lint_options;
  lint_options.theorems = false;
  lint_options.quality = false;
  const analysis::LintReport report =
      analysis::lint_schedule(g, rep.schedule, rep.durations,
                              platform::CostModel::clique(procs), lint_options);
  FLB_REQUIRE(report.clean(),
              "online recovery: the continuation repaired at horizon " +
                  std::to_string(horizon) + " fails lint rule " +
                  report.diagnostics.front().rule + ": " +
                  report.diagnostics.front().message);
}

}  // namespace

RuntimeResult run_online_recovery(const TaskGraph& g, const Schedule& nominal,
                                  const FaultPlan& world,
                                  const RuntimeOptions& options) {
  const TaskId n = g.num_tasks();
  const ProcId procs = nominal.num_procs();
  FLB_REQUIRE(nominal.complete(),
              "run_online_recovery: the nominal schedule must be complete");
  FLB_REQUIRE(nominal.num_tasks() == n,
              "run_online_recovery: schedule and graph disagree on the task "
              "count");
  FLB_REQUIRE(options.debounce >= 0.0 && options.backoff_base >= 0.0,
              "run_online_recovery: debounce and backoff_base must be "
              "non-negative");
  world.validate(procs);

  HorizonFaultView view(world, procs);
  Schedule current = nominal;
  // Effective remaining work per task, fed back to the simulator as
  // SimOptions::work_override: once a kill with durably checkpointed work is
  // observed, the re-executed task carries only its unprotected remainder —
  // the world honors checkpoint resume across repairs.
  std::vector<Cost> remaining(n, kUndefinedTime);
  std::vector<Cost> last_durations;
  std::vector<RepairInvocation> repairs;
  std::vector<char> repair_targets(procs, 0);
  std::size_t retry_attempts = 0;
  bool force_greedy = false;
  bool degraded = false;

  std::vector<SimEvent> log;
  SimOptions sim_options;
  sim_options.network = options.network;
  sim_options.latency_factor = options.latency_factor;
  sim_options.faults = &world;
  sim_options.work_override = &remaining;
  sim_options.event_log = &log;
  // Causal continuation replay: repaired start times encode release
  // instants and rejoin admissions, so they are hard earliest-start
  // constraints — and a task that had not started when its processor died
  // must return to the queue, not count as killed, or give-back after a
  // rejoin could never execute.
  sim_options.honor_start_times = true;

  SimResult sim;
  // Every iteration observes at least one new event (or breaks), and the
  // observation space is finite — machine events are fixed by the plan,
  // task kills are keyed by the plan's finite death instants, message drops
  // by edge. The cap is a runaway backstop, far above any real episode.
  const std::size_t cap = 1000 + 32 * (static_cast<std::size_t>(n) +
                                       g.num_edges() + procs);
  for (std::size_t iter = 0;; ++iter) {
    FLB_REQUIRE(iter < cap,
                "run_online_recovery: controller failed to converge");
    sim = simulate(g, current, sim_options);

    // Fresh events, in time order. Once the execution runs to completion,
    // events at or beyond its makespan can no longer affect anything — a
    // controller that has seen every task finish stops reacting.
    std::vector<SimEvent> fresh;
    for (const SimEvent& event : log) {
      if (view.observed(event)) continue;
      if (sim.complete() && event.time >= sim.makespan) continue;
      fresh.push_back(event);
    }
    if (fresh.empty()) break;

    // Debounce: coalesce everything within the window opened by the first
    // unobserved event into one reaction.
    const Cost observed_at = fresh.front().time;
    const Cost batch_end = observed_at + options.debounce;
    std::vector<SimEvent> batch;
    for (const SimEvent& event : fresh)
      if (event.time <= batch_end) batch.push_back(event);

    // Bounded retry: a failure striking a processor the previous repair
    // migrated work onto pushes the next repair back exponentially; past
    // the retry budget the optimizing engine is no longer trusted.
    std::size_t attempt = 0;
    for (const SimEvent& event : batch)
      if (event.kind == SimEventKind::kFailure &&
          repair_targets[event.proc] != 0) {
        attempt = ++retry_attempts;
        if (retry_attempts > options.max_retries) force_greedy = true;
        break;
      }
    Cost horizon = std::max(view.horizon(), batch_end);
    if (attempt > 0)
      horizon += options.backoff_base *
                 std::ldexp(1.0, static_cast<int>(std::min<std::size_t>(
                                     attempt - 1, 30)));

    view.advance(horizon);
    for (const SimEvent& event : batch) {
      view.observe(event);
      if (event.kind == SimEventKind::kTaskKilled && event.value > 0.0) {
        const Cost before = remaining[event.task] != kUndefinedTime
                                ? remaining[event.task]
                                : g.comp(event.task) *
                                      runtime_factor(world, event.task);
        remaining[event.task] = std::max(0.0, before - event.value);
      }
    }

    RepairInvocation inv;
    inv.observed_at = observed_at;
    inv.horizon = horizon;
    inv.events = batch.size();
    inv.survivors = view.observed_alive();
    inv.retry_attempt = attempt;

    if (inv.survivors == 0) {
      // Nothing to repair onto: hold the current schedule and wait for the
      // next observable event (a rejoin, if one ever comes).
      inv.deferred = true;
      repairs.push_back(inv);
      continue;
    }

    const SimResult obs =
        observed_slice(g, sim, horizon, remaining, world, view);
    RepairOptions repair_options;
    repair_options.strategy =
        (force_greedy || inv.survivors < options.degrade_below)
            ? RepairStrategy::kGreedy
            : RepairStrategy::kAuto;
    repair_options.flb = options.flb;
    repair_options.dropped_data = DroppedDataPolicy::kReexecuteProducers;
    repair_options.horizon = horizon;
    const RepairResult rep =
        repair_schedule(g, current, obs, view.plan(), repair_options);
    if (options.validate) check_continuation(g, rep, procs, horizon);

    inv.used = rep.used;
    inv.migrated = rep.migrated_tasks;
    inv.reexecuted = rep.reexecuted_tasks;
    inv.makespan = rep.schedule.makespan();
    inv.schedule_digest = fnv1a_digest(to_schedule_text(rep.schedule));
    repairs.push_back(inv);
    if (rep.used == RepairStrategy::kGreedy) degraded = true;

    repair_targets.assign(procs, 0);
    for (ProcId p = 0; p < procs; ++p)
      for (const TaskId t : rep.schedule.tasks_on(p))
        if (rep.schedule.start(t) >= rep.release_time - 1e-9) {
          repair_targets[p] = 1;
          break;
        }

    current = rep.schedule;
    last_durations = rep.durations;
  }

  RuntimeResult result(std::move(current));
  result.durations = std::move(last_durations);
  result.makespan = sim.makespan;
  result.complete = sim.complete();
  result.execution = std::move(sim);
  result.events = std::move(log);
  result.repairs = std::move(repairs);
  result.events_observed = view.observed_events();
  result.degraded = degraded;
  result.event_digest = fnv1a_digest(event_log_text(result.events));
  result.schedule_digest = fnv1a_digest(to_schedule_text(result.schedule));
  return result;
}

}  // namespace flb::runtime
