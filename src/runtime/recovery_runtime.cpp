#include "flb/runtime/recovery_runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "flb/analysis/lint.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/sched/export.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"

namespace flb::runtime {

// --- HorizonFaultView -------------------------------------------------------

HorizonFaultView::HorizonFaultView(const FaultPlan& world, ProcId num_procs)
    : num_procs_(num_procs), dead_(num_procs, 0) {
  FLB_REQUIRE(num_procs > 0, "HorizonFaultView: need at least one processor");
  // Configuration scalars only: the timing of faults (failures, rejoins,
  // slowdowns, domains, bursts) stays hidden until observed.
  plan_.seed = world.seed;
  plan_.checkpoint = world.checkpoint;
  plan_.message = world.message;
  plan_.heartbeat = world.heartbeat;
  plan_.runtime_spread = world.runtime_spread;
}

void HorizonFaultView::advance(Cost horizon) {
  FLB_REQUIRE(horizon >= horizon_,
              "HorizonFaultView: the observation horizon cannot move "
              "backwards (advance to " +
                  std::to_string(horizon) + " with the horizon at " +
                  std::to_string(horizon_) + ")");
  horizon_ = horizon;
}

bool HorizonFaultView::observed(const SimEvent& event) const {
  if (event.kind == SimEventKind::kMessageDropped &&
      dropped_.count({event.task, event.task2}) != 0)
    return true;
  return seen_.count(event.key()) != 0;
}

void HorizonFaultView::observe(const SimEvent& event) {
  FLB_REQUIRE(event.time <= horizon_,
              "HorizonFaultView: an event at t=" + std::to_string(event.time) +
                  " beyond the horizon " + std::to_string(horizon_) +
                  " cannot be observed — that would be future knowledge");
  if (observed(event)) return;
  seen_.insert(event.key());
  switch (event.kind) {
    case SimEventKind::kFailure:
      plan_.failures.push_back({event.proc, event.time});
      dead_[event.proc] = 1;
      break;
    case SimEventKind::kRejoin:
      plan_.rejoins.push_back({event.proc, event.time});
      dead_[event.proc] = 0;
      break;
    case SimEventKind::kSlowdownBegin:
      // Until the end is observed the throttling must be assumed permanent.
      plan_.slowdowns.push_back(
          {event.proc, event.time, event.value, kInfiniteTime});
      break;
    case SimEventKind::kSlowdownEnd: {
      // Close the earliest still-open slowdown of this processor with the
      // matching factor. The onset always precedes the end, so it has been
      // observed already (batches are consumed in time order).
      SlowdownFault* open = nullptr;
      for (SlowdownFault& f : plan_.slowdowns)
        if (f.proc == event.proc && f.factor == event.value &&
            f.until == kInfiniteTime && (open == nullptr || f.time < open->time))
          open = &f;
      FLB_REQUIRE(open != nullptr,
                  "HorizonFaultView: slowdown end without an observed onset");
      open->until = event.time;
      break;
    }
    case SimEventKind::kTaskKilled:
      break;  // payload lives in the horizon-sliced SimResult
    case SimEventKind::kMessageDropped:
      dropped_.insert({event.task, event.task2});
      break;
    case SimEventKind::kLinkPartitioned:
      // Until the heal is observed the link must be assumed dark forever.
      plan_.partitions.push_back(
          {event.proc, event.proc2, "", "", event.time, kInfiniteTime});
      break;
    case SimEventKind::kLinkHealed: {
      // Close the earliest still-open outage of this link; the onset always
      // precedes the heal, so it has been observed already.
      PartitionFault* open = nullptr;
      for (PartitionFault& p : plan_.partitions)
        if (p.domain_a.empty() && p.domain_b.empty() &&
            p.proc_a == event.proc && p.proc_b == event.proc2 &&
            p.until == kInfiniteTime &&
            (open == nullptr || p.time < open->time))
          open = &p;
      FLB_REQUIRE(open != nullptr,
                  "HorizonFaultView: link heal without an observed onset");
      open->until = event.time;
      break;
    }
  }
}

ProcId HorizonFaultView::observed_alive() const {
  ProcId alive = 0;
  for (ProcId p = 0; p < num_procs_; ++p)
    if (dead_[p] == 0) ++alive;
  return alive;
}

// --- Digests ----------------------------------------------------------------

std::uint64_t fnv1a_digest(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string event_log_text(const std::vector<SimEvent>& events) {
  std::string text;
  for (const SimEvent& event : events) {
    text += to_string(event);
    text += '\n';
  }
  return text;
}

// --- The controller loop ----------------------------------------------------

namespace {

/// The slice of one simulated execution the controller is allowed to see at
/// `horizon`: placements of tasks that *finished* by then; everything else
/// (including work in flight at the horizon, whose eventual finish is not
/// yet observable) is re-planned. `checkpointed` is reconstructed from the
/// accumulated work-override bookkeeping, `dropped_edges` from the observed
/// drop events — never from the world's SimResult fields directly, which
/// embed post-horizon knowledge.
SimResult observed_slice(const TaskGraph& g, const SimResult& sim,
                         Cost horizon, const std::vector<Cost>& remaining,
                         const FaultPlan& world,
                         const HorizonFaultView& view) {
  const TaskId n = g.num_tasks();
  SimResult obs;
  obs.start.assign(n, kUndefinedTime);
  obs.finish.assign(n, kUndefinedTime);
  obs.checkpointed.assign(n, 0.0);
  for (TaskId t = 0; t < n; ++t) {
    if (sim.finish[t] != kUndefinedTime && sim.finish[t] <= horizon) {
      obs.start[t] = sim.start[t];
      obs.finish[t] = sim.finish[t];
      obs.makespan = std::max(obs.makespan, obs.finish[t]);
    } else {
      obs.unfinished.push_back(t);
    }
    // Work already durably saved for tasks resuming from a checkpoint:
    // repair subtracts this from the full (perturbed) computation, landing
    // exactly on the remainder the simulator's work override executes.
    if (remaining[t] != kUndefinedTime)
      obs.checkpointed[t] = std::max(
          0.0, g.comp(t) * runtime_factor(world, t) - remaining[t]);
  }
  for (const auto& edge : sim.dropped_edges)
    if (view.observed({0.0, SimEventKind::kMessageDropped, kInvalidProc,
                       edge.first, edge.second, 0.0}))
      obs.dropped_edges.push_back(edge);
  obs.dropped_messages = obs.dropped_edges.size();
  return obs;
}

void check_continuation(const TaskGraph& g, const RepairResult& rep,
                        ProcId procs, Cost horizon) {
  const std::vector<Violation> violations =
      validate_schedule(g, rep.schedule, rep.durations);
  FLB_REQUIRE(violations.empty(),
              "online recovery: the continuation repaired at horizon " +
                  std::to_string(horizon) + " is infeasible: " +
                  to_string(violations.front()));
  analysis::LintOptions lint_options;
  lint_options.theorems = false;
  lint_options.quality = false;
  const analysis::LintReport report =
      analysis::lint_schedule(g, rep.schedule, rep.durations,
                              platform::CostModel::clique(procs), lint_options);
  FLB_REQUIRE(report.clean(),
              "online recovery: the continuation repaired at horizon " +
                  std::to_string(horizon) + " fails lint rule " +
                  report.diagnostics.front().rule + ": " +
                  report.diagnostics.front().message);
}

/// The unreliable-detector controller: identical skeleton to the
/// perfect-event loop below, but the simulator's kFailure/kRejoin events
/// are invisible — remote liveness is *inferred* from the FailureDetector's
/// belief stream, and the plan handed to each repair lists the controller's
/// hypotheses (suspicion-to-exoneration windows), not the truth. Slowdowns,
/// permanent message drops and task-kill telemetry stay directly observable:
/// throttling is a local counter, a drop is the sender's own retry budget,
/// and a lost dispatched task surfaces through durable-store lease expiry —
/// none of them requires knowing whether a remote *processor* is alive.
RuntimeResult run_detector_recovery(const TaskGraph& g,
                                    const Schedule& nominal,
                                    const FaultPlan& world,
                                    const RuntimeOptions& options) {
  const TaskId n = g.num_tasks();
  const ProcId procs = nominal.num_procs();
  FLB_REQUIRE(world.heartbeat.enabled(),
              "run_online_recovery: use_detector requires a heartbeat "
              "section in the world plan (heartbeat.period > 0)");
  const FailureDetector detector(world, procs);
  const HeartbeatConfig& hb = world.heartbeat;
  FLB_REQUIRE(!options.use_gossip || options.quorum >= 1,
              "run_online_recovery: use_gossip requires a quorum of at "
              "least one observer");
  FLB_REQUIRE(!options.self_tune || options.tune_raise > 1.0,
              "run_online_recovery: self_tune requires tune_raise > 1");

  HorizonFaultView view(world, procs);
  Schedule current = nominal;
  std::vector<Cost> remaining(n, kUndefinedTime);
  std::vector<Cost> last_durations;
  std::vector<RepairInvocation> repairs;
  std::vector<char> repair_targets(procs, 0);
  std::vector<char> killed_observed(n, 0);
  std::size_t retry_attempts = 0;
  bool force_greedy = false;
  bool degraded = false;

  // The controller's belief per processor: 0 trusted, 1 suspected,
  // 2 confirmed dead. open_since is the hypothesized death instant (the
  // suspicion time); closed holds finished hypothesis windows — a
  // confirmed death whose processor was later heard from again is treated
  // as a reboot with cold caches.
  std::vector<int> belief(procs, 0);
  std::vector<Cost> open_since(procs, 0.0);
  std::vector<std::vector<std::pair<Cost, Cost>>> closed(procs);
  std::set<std::tuple<Cost, int, ProcId>> belief_seen;
  std::vector<BeliefEvent> consumed;
  // Active speculations: the placements each one moved off its suspect, so
  // an exoneration can price what the cancelled hedge burned.
  std::vector<std::vector<TaskId>> spec_moved(procs);
  std::size_t false_alarms = 0, confirmations = 0, spec_tasks = 0;
  Cost spec_waste = 0.0;
  std::vector<Cost> confirm_times;

  // Gossip mode: the controller's own (observer-0) view, kept beside the
  // cluster-wide stream. A processor suspected locally while the cluster
  // still trusts it is unreachable from the controller, not dead.
  std::vector<int> local_level(procs, 0);
  std::set<std::tuple<Cost, int, ProcId>> local_seen;

  // Self-tuning: multiplier on the suspect threshold, raised on false
  // alarms, capped strictly below the confirm threshold, decayed after a
  // quiet window.
  double scale = 1.0;
  const double scale_cap =
      std::max(1.0, 0.95 * hb.confirm_after / hb.suspect_after);
  Cost last_alarm = -kInfiniteTime;
  std::vector<std::pair<Cost, double>> suspect_trace;
  std::size_t suppressed = 0;

  // Adaptive checkpointing: per-task interval overrides installed for the
  // tasks each repair re-plans (those start at or after the reaction's
  // horizon in every later simulation, so overriding them never perturbs
  // already-observed history), and the current Young/Daly estimate.
  std::vector<Cost> ckpt_interval(n, kUndefinedTime);
  Cost current_tau = 0.0;  // 0 = no estimate yet: keep the plan's interval

  platform::CostModel waste_model = platform::CostModel::clique(procs);
  waste_model.set_latency_factor(options.latency_factor);

  std::vector<SimEvent> log;
  SimOptions sim_options;
  sim_options.network = options.network;
  sim_options.latency_factor = options.latency_factor;
  sim_options.faults = &world;
  sim_options.work_override = &remaining;
  sim_options.checkpoint_interval = &ckpt_interval;
  sim_options.event_log = &log;
  sim_options.honor_start_times = true;

  // One merged observation: a directly observable SimEvent (src 0), a
  // liveness belief from the consumed stream (src 1), or — gossip mode —
  // an observer-0 reachability belief (src 2).
  struct Obs {
    Cost time = 0.0;
    int src = 0;
    SimEvent ev{};
    BeliefEvent bel{};
  };

  // The liveness stream the controller acts on: the gossip aggregate when
  // enabled, the legacy observer-0 stream otherwise.
  auto source = [&](Cost until) {
    return options.use_gossip
               ? detector.quorum_beliefs(options.quorum, until)
               : detector.beliefs(until);
  };
  // Does the stream exonerate p in (after, by]? Pure lookahead into the
  // prefix-stable belief stream — used by the self-tuned threshold to tell
  // a silence the raised threshold would outlast from a real one.
  auto exonerated_by = [&](ProcId p, Cost after, Cost by) {
    for (const BeliefEvent& e : source(by))
      if (e.proc == p && e.time > after)
        return e.kind == BeliefKind::kExonerated && e.time <= by;
    return false;
  };

  SimResult sim;
  // Per-iteration scratch, hoisted out of the controller loop: cleared (or
  // copy-assigned) each round with capacity retained, so a long episode
  // stops churning the allocator on every repair.
  std::vector<Obs> fresh;
  std::vector<Obs> batch;
  std::vector<ProcId> newly_suspected;
  std::vector<char> exonerated_now;
  FaultPlan bp;
  RepairOptions repair_options;
  repair_options.flb = options.flb;
  repair_options.dropped_data = DroppedDataPolicy::kReexecuteProducers;
  const std::size_t cap = 1000 + 32 * (static_cast<std::size_t>(n) +
                                       g.num_edges() + procs);
  for (std::size_t iter = 0;; ++iter) {
    FLB_REQUIRE(iter < cap,
                "run_online_recovery: controller failed to converge");
    sim = simulate(g, current, sim_options);

    auto collect = [&](Cost until) {
      fresh.clear();
      for (const SimEvent& event : log) {
        if (event.kind == SimEventKind::kFailure ||
            event.kind == SimEventKind::kRejoin ||
            event.kind == SimEventKind::kLinkPartitioned ||
            event.kind == SimEventKind::kLinkHealed)
          continue;  // remote liveness and link state cannot be sensed
        if (view.observed(event)) continue;
        if (sim.complete() && event.time >= sim.makespan) continue;
        fresh.push_back({event.time, 0, event, {}});
      }
      for (const BeliefEvent& b : source(until)) {
        if (belief_seen.count(b.key()) != 0) continue;
        if (sim.complete() && b.time >= sim.makespan) continue;
        fresh.push_back({b.time, 1, {}, b});
      }
      if (options.use_gossip)
        for (const BeliefEvent& b : detector.beliefs(until)) {
          if (local_seen.count(b.key()) != 0) continue;
          if (sim.complete() && b.time >= sim.makespan) continue;
          fresh.push_back({b.time, 2, {}, b});
        }
      std::sort(fresh.begin(), fresh.end(), [](const Obs& a, const Obs& b) {
        if (a.time != b.time) return a.time < b.time;
        if (a.src != b.src) return a.src < b.src;
        if (a.src != 0) return a.bel.key() < b.bel.key();
        return a.ev.key() < b.ev.key();
      });
    };

    // The belief stream is prefix-stable in its horizon, so any finite
    // window works; start with enough slack past the latest activity to
    // cover a full confirm window, and widen geometrically when an
    // incomplete execution is waiting on a belief further out (the rescue
    // confirmation of a silently dead processor, or the exoneration of a
    // falsely suspected one).
    const Cost slack =
        hb.period * (hb.confirm_after + hb.delay_factor + 2.0);
    Cost ref = std::max(view.horizon(), sim.makespan);
    if (!log.empty()) ref = std::max(ref, log.back().time);
    Cost until = ref + slack;
    collect(until);
    for (int grow = 0; fresh.empty() && !sim.complete() && grow < 60;
         ++grow) {
      until *= 2.0;
      collect(until);
    }
    if (fresh.empty()) break;

    bool spec_launched = false, promoted = false, cancelled = false;
    newly_suspected.clear();
    exonerated_now.assign(procs, 0);
    // A raw suspicion the self-tuned threshold absorbs: the subject is
    // exonerated before the silence would have crossed the raised
    // threshold, so the controller never reacts to it.
    auto tuned_out = [&](const BeliefEvent& b) {
      if (!options.self_tune || scale <= 1.0) return false;
      if (b.kind != BeliefKind::kSuspected || belief[b.proc] != 0)
        return false;
      const Cost tuned_at =
          b.last_heard + scale * hb.suspect_after * hb.period;
      return b.time < tuned_at && exonerated_by(b.proc, b.time, tuned_at);
    };
    auto consume_belief = [&](const BeliefEvent& b) {
      belief_seen.insert(b.key());
      consumed.push_back(b);
      const ProcId p = b.proc;
      switch (b.kind) {
        case BeliefKind::kSuspected:
          if (belief[p] == 0) {
            if (tuned_out(b)) {
              ++suppressed;
              break;
            }
            belief[p] = 1;
            open_since[p] = b.time;
            if (options.speculate) {
              spec_launched = true;
              newly_suspected.push_back(p);
            }
          }
          break;
        case BeliefKind::kConfirmedDead:
          if (belief[p] == 1) {
            belief[p] = 2;
            ++confirmations;
            confirm_times.push_back(b.time);
            if (!spec_moved[p].empty()) {
              promoted = true;  // the speculation becomes the plan
              spec_moved[p].clear();
            }
          }
          break;
        case BeliefKind::kExonerated:
          if (belief[p] == 1) {
            ++false_alarms;
            if (options.self_tune) {
              // Multiplicative raise per false alarm: the next silence must
              // outlast a strictly larger threshold before the controller
              // reacts.
              scale = std::min(scale_cap, scale * options.tune_raise);
              last_alarm = b.time;
              suspect_trace.push_back({b.time, scale * hb.suspect_after});
            }
            if (options.speculate) exonerated_now[p] = 1;
            if (!spec_moved[p].empty()) {
              // Cancel the speculation, first-completion-wins: duplicate
              // placements that finished before the exoneration are banked
              // (they stay in the fixed prefix); ones still in flight are
              // re-planned, so the wall time they burned — plus the input
              // shipping their placement paid — is pure waste.
              cancelled = true;
              for (const TaskId t : spec_moved[p]) {
                if (current.proc(t) == p) continue;
                if (sim.start[t] == kUndefinedTime ||
                    sim.start[t] >= b.time)
                  continue;
                if (sim.finish[t] != kUndefinedTime &&
                    sim.finish[t] <= b.time)
                  continue;  // completed elsewhere first: the hedge won
                spec_waste += b.time - sim.start[t];
                for (const Adj& in : g.predecessors(t))
                  if (current.proc(in.node) != current.proc(t))
                    spec_waste += waste_model.message_cost(in.comm);
                ++spec_tasks;
              }
            }
          } else if (belief[p] == 2) {
            closed[p].push_back({open_since[p], b.time});
          }
          belief[p] = 0;
          spec_moved[p].clear();
          break;
      }
    };

    // Observer-0 reachability beliefs (gossip mode) only steer where new
    // placements go; they are folded into local_level as they are consumed.
    auto consume_local = [&](const BeliefEvent& b) {
      local_seen.insert(b.key());
      local_level[b.proc] = b.kind == BeliefKind::kExonerated     ? 0
                            : b.kind == BeliefKind::kSuspected    ? 1
                                                                  : 2;
    };

    // In confirm-then-repair mode a suspicion (or the exoneration of a
    // mere suspect) changes nothing the controller would act on: consume
    // such leading beliefs passively, without a reaction. A suspicion the
    // self-tuned threshold absorbs is likewise passive knowledge, and so
    // is a local (observer-0) belief that merely *adds* the subject to the
    // unreachable set: the controller cannot retract the schedule already
    // installed behind the cut, so going dark re-plans nothing — the mask
    // is recorded and constrains whatever belief-driven repair comes next.
    // Only the belief that *removes* a processor from the set reacts: the
    // link healed, and a reconciliation repair re-balances whatever fell
    // behind the partition.
    auto actionable = [&](const Obs& o) {
      if (o.src == 2) {
        const bool now =
            local_level[o.bel.proc] >= 1 && belief[o.bel.proc] == 0;
        const bool next = o.bel.kind != BeliefKind::kExonerated &&
                          belief[o.bel.proc] == 0;
        return now && !next;
      }
      if (o.src != 1) return true;
      if (tuned_out(o.bel)) return false;
      if (options.speculate) return true;
      if (o.bel.kind == BeliefKind::kConfirmedDead) return true;
      return o.bel.kind == BeliefKind::kExonerated &&
             belief[o.bel.proc] == 2;
    };
    std::size_t idx = 0;
    while (idx < fresh.size() && !actionable(fresh[idx])) {
      if (fresh[idx].src == 2)
        consume_local(fresh[idx].bel);
      else
        consume_belief(fresh[idx].bel);
      ++idx;
    }
    if (idx == fresh.size()) continue;  // only passive knowledge this round

    const Cost observed_at = fresh[idx].time;
    const Cost batch_end = observed_at + options.debounce;
    batch.clear();
    for (std::size_t i = idx; i < fresh.size(); ++i)
      if (fresh[i].time <= batch_end) batch.push_back(fresh[i]);

    // Bounded retry, keyed on the detector-mode analog of the perfect
    // loop's re-strike: a *confirmation* hitting a processor the previous
    // repair migrated work onto.
    std::size_t attempt = 0;
    for (const Obs& o : batch)
      if (o.src == 1 && o.bel.kind == BeliefKind::kConfirmedDead &&
          repair_targets[o.bel.proc] != 0) {
        attempt = ++retry_attempts;
        if (retry_attempts > options.max_retries) force_greedy = true;
        break;
      }
    Cost horizon = std::max(view.horizon(), batch_end);
    if (attempt > 0)
      horizon += options.backoff_base *
                 std::ldexp(1.0, static_cast<int>(std::min<std::size_t>(
                                     attempt - 1, 30)));

    view.advance(horizon);
    for (const Obs& o : batch) {
      if (o.src == 1) {
        consume_belief(o.bel);
        continue;
      }
      if (o.src == 2) {
        consume_local(o.bel);
        continue;
      }
      view.observe(o.ev);
      if (o.ev.kind == SimEventKind::kTaskKilled) {
        killed_observed[o.ev.task] = 1;
        if (o.ev.value > 0.0) {
          const Cost before = remaining[o.ev.task] != kUndefinedTime
                                  ? remaining[o.ev.task]
                                  : g.comp(o.ev.task) *
                                        runtime_factor(world, o.ev.task);
          remaining[o.ev.task] = std::max(0.0, before - o.ev.value);
        }
      }
    }

    // Decay the self-tuned threshold once per reaction after a quiet
    // window: no false alarm within tune_window of the horizon.
    if (options.self_tune && scale > 1.0 &&
        horizon - last_alarm > options.tune_window) {
      scale = std::max(1.0, scale / options.tune_raise);
      last_alarm = horizon;
      suspect_trace.push_back({horizon, scale * hb.suspect_after});
    }

    RepairInvocation inv;
    inv.observed_at = observed_at;
    inv.horizon = horizon;
    inv.events = batch.size();
    for (const Obs& o : batch) {
      if (o.src == 0)
        inv.batch.push_back(o.ev);
      else
        inv.batch_beliefs.push_back(o.bel);
    }
    inv.retry_attempt = attempt;
    inv.speculative = spec_launched;
    inv.promoted = promoted;
    inv.cancelled = cancelled;
    inv.suspect_scale = scale;
    ProcId usable = 0;
    for (ProcId p = 0; p < procs; ++p) {
      if (belief[p] == 1) ++inv.suspects;
      const bool listed_dead =
          options.speculate ? belief[p] != 0 : belief[p] == 2;
      if (!listed_dead) ++usable;
    }
    inv.survivors = usable;

    // Partition-aware placement: a processor the controller suspects
    // locally while the cluster-wide stream still trusts it is unreachable
    // from the controller, not dead — no new placements go there, its
    // in-flight task is pinned, and the local exoneration (the heal)
    // triggers the reconciliation repair that hands its queue back.
    repair_options.unreachable.clear();
    if (options.use_gossip)
      for (ProcId p = 1; p < procs; ++p)
        if (local_level[p] >= 1 && belief[p] == 0)
          repair_options.unreachable.push_back(p);
    inv.unreachable = static_cast<ProcId>(repair_options.unreachable.size());

    if (usable <= inv.unreachable) {
      inv.deferred = true;
      repairs.push_back(inv);
      continue;
    }

    // The plan handed to the repair is the controller's *hypothesis*:
    // observed slowdowns plus one failure window per belief — closed
    // windows for confirmed-then-exonerated processors (a reboot with cold
    // caches, as far as the controller can tell), an open failure at the
    // suspicion instant for everything currently believed dead. In
    // speculative mode suspects are listed dead too (their queue migrates)
    // while RepairOptions::suspects pins their in-flight work in place.
    bp = view.plan();  // copy-assign into the hoisted plan: reuses capacity
    for (ProcId p = 0; p < procs; ++p) {
      for (const auto& w : closed[p]) {
        bp.failures.push_back({p, w.first});
        bp.rejoins.push_back({p, w.second});
      }
      const bool listed_dead =
          options.speculate ? belief[p] != 0 : belief[p] == 2;
      if (listed_dead) bp.failures.push_back({p, open_since[p]});
    }

    // Windowed MLE over confirmed kills, re-deriving the Young/Daly
    // first-order optimum tau = sqrt(2 * overhead / lambda). The estimate
    // prices the repair's checkpoint pauses (bp) and is installed as the
    // interval override of every task this repair re-plans.
    if (options.adapt_checkpoint && world.checkpoint.enabled() &&
        world.checkpoint.overhead > 0.0) {
      const Cost span = std::min(options.failure_rate_window, horizon);
      if (span > 0.0) {
        std::size_t kills = 0;
        for (const Cost ct : confirm_times)
          if (ct > horizon - span) ++kills;
        if (kills > 0) {
          const double lambda = static_cast<double>(kills) /
                                (span * static_cast<double>(procs));
          current_tau =
              std::sqrt(2.0 * world.checkpoint.overhead / lambda);
          inv.failure_rate = lambda;
        }
      }
    }
    inv.checkpoint_interval = current_tau;
    if (current_tau > 0.0) bp.checkpoint.interval = current_tau;

    const SimResult obs =
        observed_slice(g, sim, horizon, remaining, world, view);
    repair_options.strategy =
        (force_greedy || usable < options.degrade_below)
            ? RepairStrategy::kGreedy
            : RepairStrategy::kAuto;
    repair_options.horizon = horizon;
    repair_options.suspects.clear();
    repair_options.pin_exclude = nullptr;
    if (options.speculate) {
      // Pin in-flight work on every currently suspected processor — and on
      // every processor exonerated in this very batch: the reconciliation
      // repair now knows it is alive, so keeping its running task's
      // placement and start (first-completion-wins) is what preserves the
      // progress the false alarm would otherwise throw away.
      for (ProcId p = 0; p < procs; ++p)
        if (belief[p] == 1 || exonerated_now[p] != 0)
          repair_options.suspects.push_back(p);
      repair_options.pin_exclude = &killed_observed;
    }
    const RepairResult rep =
        repair_schedule(g, current, obs, bp, repair_options);
    if (options.validate) check_continuation(g, rep, procs, horizon);

    // Record what each just-launched speculation moved off its suspect, so
    // a later exoneration can price the cancelled hedge.
    for (const ProcId p : newly_suspected) {
      spec_moved[p].clear();
      for (const TaskId t : current.tasks_on(p))
        if (!(sim.finish[t] != kUndefinedTime && sim.finish[t] <= horizon) &&
            rep.schedule.proc(t) != p)
          spec_moved[p].push_back(t);
    }

    // Install the adapted interval for the re-planned tasks only: they
    // start at or after this horizon in every later simulation, so the
    // already-observed prefix never changes under the new policy.
    if (current_tau > 0.0)
      for (TaskId t = 0; t < n; ++t)
        if (rep.schedule.start(t) >= horizon - 1e-9)
          ckpt_interval[t] = current_tau;

    inv.used = rep.used;
    inv.migrated = rep.migrated_tasks;
    inv.reexecuted = rep.reexecuted_tasks;
    inv.makespan = rep.schedule.makespan();
    inv.schedule_digest = fnv1a_digest(to_schedule_text(rep.schedule));
    repairs.push_back(inv);
    if (rep.used == RepairStrategy::kGreedy) degraded = true;

    repair_targets.assign(procs, 0);
    for (ProcId p = 0; p < procs; ++p)
      for (const TaskId t : rep.schedule.tasks_on(p))
        if (rep.schedule.start(t) >= rep.release_time - 1e-9) {
          repair_targets[p] = 1;
          break;
        }

    current = rep.schedule;
    last_durations = rep.durations;
  }

  RuntimeResult result(std::move(current));
  result.durations = std::move(last_durations);
  result.makespan = sim.makespan;
  result.complete = sim.complete();
  result.execution = std::move(sim);
  result.events = std::move(log);
  result.repairs = std::move(repairs);
  result.events_observed = view.observed_events();
  result.degraded = degraded;
  result.event_digest = fnv1a_digest(event_log_text(result.events));
  result.schedule_digest = fnv1a_digest(to_schedule_text(result.schedule));
  result.beliefs = std::move(consumed);
  result.belief_digest = fnv1a_digest(belief_log_text(result.beliefs));
  result.false_alarms = false_alarms;
  result.confirmations = confirmations;
  result.speculative_waste = spec_waste;
  result.speculative_tasks = spec_tasks;
  result.suspect_trace = std::move(suspect_trace);
  result.suppressed_alarms = suppressed;
  // Reporting only (never used for control): detection latency against
  // the resolved truth — mean gap between each real death and its first
  // confirmation.
  {
    const ResolvedFaults truth = resolve_faults(world);
    Cost total = 0.0;
    std::size_t found = 0;
    for (const ProcFailure& f : truth.failures) {
      for (const BeliefEvent& b : result.beliefs)
        if (b.kind == BeliefKind::kConfirmedDead && b.proc == f.proc &&
            b.time >= f.time) {
          total += b.time - f.time;
          ++found;
          break;
        }
    }
    if (found > 0)
      result.mean_detection_latency = total / static_cast<Cost>(found);
  }
  return result;
}

}  // namespace

RuntimeResult run_online_recovery(const TaskGraph& g, const Schedule& nominal,
                                  const FaultPlan& world,
                                  const RuntimeOptions& options) {
  const TaskId n = g.num_tasks();
  const ProcId procs = nominal.num_procs();
  FLB_REQUIRE(nominal.complete(),
              "run_online_recovery: the nominal schedule must be complete");
  FLB_REQUIRE(nominal.num_tasks() == n,
              "run_online_recovery: schedule and graph disagree on the task "
              "count");
  FLB_REQUIRE(options.debounce >= 0.0 && options.backoff_base >= 0.0,
              "run_online_recovery: debounce and backoff_base must be "
              "non-negative");
  world.validate(procs);
  if (options.use_detector)
    return run_detector_recovery(g, nominal, world, options);

  HorizonFaultView view(world, procs);
  Schedule current = nominal;
  // Effective remaining work per task, fed back to the simulator as
  // SimOptions::work_override: once a kill with durably checkpointed work is
  // observed, the re-executed task carries only its unprotected remainder —
  // the world honors checkpoint resume across repairs.
  std::vector<Cost> remaining(n, kUndefinedTime);
  std::vector<Cost> last_durations;
  std::vector<RepairInvocation> repairs;
  std::vector<char> repair_targets(procs, 0);
  std::size_t retry_attempts = 0;
  bool force_greedy = false;
  bool degraded = false;

  std::vector<SimEvent> log;
  SimOptions sim_options;
  sim_options.network = options.network;
  sim_options.latency_factor = options.latency_factor;
  sim_options.faults = &world;
  sim_options.work_override = &remaining;
  sim_options.event_log = &log;
  // Causal continuation replay: repaired start times encode release
  // instants and rejoin admissions, so they are hard earliest-start
  // constraints — and a task that had not started when its processor died
  // must return to the queue, not count as killed, or give-back after a
  // rejoin could never execute.
  sim_options.honor_start_times = true;

  SimResult sim;
  // Per-iteration scratch, hoisted out of the controller loop so repeated
  // repairs reuse capacity instead of reallocating every round.
  std::vector<SimEvent> fresh;
  std::vector<SimEvent> batch;
  std::vector<LinkOutage> outages;
  RepairOptions repair_options;
  repair_options.flb = options.flb;
  repair_options.dropped_data = DroppedDataPolicy::kReexecuteProducers;
  // Every iteration observes at least one new event (or breaks), and the
  // observation space is finite — machine events are fixed by the plan,
  // task kills are keyed by the plan's finite death instants, message drops
  // by edge. The cap is a runaway backstop, far above any real episode.
  const std::size_t cap = 1000 + 32 * (static_cast<std::size_t>(n) +
                                       g.num_edges() + procs);
  for (std::size_t iter = 0;; ++iter) {
    FLB_REQUIRE(iter < cap,
                "run_online_recovery: controller failed to converge");
    sim = simulate(g, current, sim_options);

    // Fresh events, in time order. Once the execution runs to completion,
    // events at or beyond its makespan can no longer affect anything — a
    // controller that has seen every task finish stops reacting.
    fresh.clear();
    for (const SimEvent& event : log) {
      if (view.observed(event)) continue;
      if (sim.complete() && event.time >= sim.makespan) continue;
      fresh.push_back(event);
    }
    if (fresh.empty()) break;

    // Debounce: coalesce everything within the window opened by the first
    // unobserved event into one reaction.
    const Cost observed_at = fresh.front().time;
    const Cost batch_end = observed_at + options.debounce;
    batch.clear();
    for (const SimEvent& event : fresh)
      if (event.time <= batch_end) batch.push_back(event);

    // Bounded retry: a failure striking a processor the previous repair
    // migrated work onto pushes the next repair back exponentially; past
    // the retry budget the optimizing engine is no longer trusted.
    std::size_t attempt = 0;
    for (const SimEvent& event : batch)
      if (event.kind == SimEventKind::kFailure &&
          repair_targets[event.proc] != 0) {
        attempt = ++retry_attempts;
        if (retry_attempts > options.max_retries) force_greedy = true;
        break;
      }
    Cost horizon = std::max(view.horizon(), batch_end);
    if (attempt > 0)
      horizon += options.backoff_base *
                 std::ldexp(1.0, static_cast<int>(std::min<std::size_t>(
                                     attempt - 1, 30)));

    view.advance(horizon);
    for (const SimEvent& event : batch) {
      view.observe(event);
      if (event.kind == SimEventKind::kTaskKilled && event.value > 0.0) {
        const Cost before = remaining[event.task] != kUndefinedTime
                                ? remaining[event.task]
                                : g.comp(event.task) *
                                      runtime_factor(world, event.task);
        remaining[event.task] = std::max(0.0, before - event.value);
      }
    }

    RepairInvocation inv;
    inv.observed_at = observed_at;
    inv.horizon = horizon;
    inv.events = batch.size();
    inv.batch = batch;
    inv.survivors = view.observed_alive();
    inv.retry_attempt = attempt;

    // Partition-aware repair: a processor with no live path from the
    // controller (p0) at the horizon cannot receive new placements — but it
    // is not dead, so its in-flight task is pinned rather than written off
    // and its queue migrates; the heal event triggers the reconciliation.
    repair_options.unreachable.clear();
    if (!view.plan().partitions.empty()) {
      outages = resolve_partitions(view.plan());
      for (ProcId p = 1; p < procs; ++p)
        if (!view.observed_dead(p) &&
            !path_connected(outages, procs, 0, p, horizon))
          repair_options.unreachable.push_back(p);
    }
    inv.unreachable = static_cast<ProcId>(repair_options.unreachable.size());

    if (inv.survivors <= inv.unreachable) {
      // Nothing reachable to repair onto: hold the current schedule and
      // wait for the next observable event (a rejoin or heal, if one ever
      // comes).
      inv.deferred = true;
      repairs.push_back(inv);
      continue;
    }

    const SimResult obs =
        observed_slice(g, sim, horizon, remaining, world, view);
    repair_options.strategy =
        (force_greedy || inv.survivors < options.degrade_below)
            ? RepairStrategy::kGreedy
            : RepairStrategy::kAuto;
    repair_options.horizon = horizon;
    const RepairResult rep =
        repair_schedule(g, current, obs, view.plan(), repair_options);
    if (options.validate) check_continuation(g, rep, procs, horizon);

    inv.used = rep.used;
    inv.migrated = rep.migrated_tasks;
    inv.reexecuted = rep.reexecuted_tasks;
    inv.makespan = rep.schedule.makespan();
    inv.schedule_digest = fnv1a_digest(to_schedule_text(rep.schedule));
    repairs.push_back(inv);
    if (rep.used == RepairStrategy::kGreedy) degraded = true;

    repair_targets.assign(procs, 0);
    for (ProcId p = 0; p < procs; ++p)
      for (const TaskId t : rep.schedule.tasks_on(p))
        if (rep.schedule.start(t) >= rep.release_time - 1e-9) {
          repair_targets[p] = 1;
          break;
        }

    current = rep.schedule;
    last_durations = rep.durations;
  }

  RuntimeResult result(std::move(current));
  result.durations = std::move(last_durations);
  result.makespan = sim.makespan;
  result.complete = sim.complete();
  result.execution = std::move(sim);
  result.events = std::move(log);
  result.repairs = std::move(repairs);
  result.events_observed = view.observed_events();
  result.degraded = degraded;
  result.event_digest = fnv1a_digest(event_log_text(result.events));
  result.schedule_digest = fnv1a_digest(to_schedule_text(result.schedule));
  return result;
}

}  // namespace flb::runtime
