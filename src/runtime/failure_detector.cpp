#include "flb/runtime/failure_detector.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "flb/util/error.hpp"
#include "flb/util/rng.hpp"

namespace flb::runtime {

namespace {

// Same splitmix-style finalizer as the fault-resolution streams in
// sim/faults.cpp; domain tag 5 keeps the heartbeat draws decorrelated from
// the task (1), edge (2), burst (3) and cascade (4) streams of one seed.
std::uint64_t mix(std::uint64_t seed, std::uint64_t domain,
                  std::uint64_t index) {
  std::uint64_t z = seed ^ (domain * 0x9e3779b97f4a7c15ULL) ^
                    (index + 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kHeartbeatDomain = 5;

const char* kind_name(BeliefKind kind) {
  switch (kind) {
    case BeliefKind::kSuspected: return "suspect";
    case BeliefKind::kConfirmedDead: return "confirm-dead";
    case BeliefKind::kExonerated: return "exonerate";
  }
  return "?";
}

}  // namespace

std::string to_string(const BeliefEvent& belief) {
  std::ostringstream os;
  os.precision(17);
  os << "t=" << belief.time << " " << kind_name(belief.kind) << " proc "
     << belief.proc << " last-heard " << belief.last_heard;
  if (belief.kind != BeliefKind::kExonerated)
    os << " phi " << belief.score;
  return os.str();
}

std::string belief_log_text(const std::vector<BeliefEvent>& beliefs) {
  std::string text;
  for (const BeliefEvent& b : beliefs) {
    text += to_string(b);
    text += '\n';
  }
  return text;
}

FailureDetector::FailureDetector(const FaultPlan& world, ProcId num_procs)
    : hb_(world.heartbeat), seed_(world.seed), num_procs_(num_procs) {
  FLB_REQUIRE(hb_.enabled(),
              "FailureDetector: the world plan has no heartbeat section "
              "(heartbeat.period must be positive)");
  world.validate(num_procs);
  const ResolvedFaults resolved = resolve_faults(world);
  down_.assign(num_procs, {});
  // resolve_faults canonicalizes kill/rejoin into alternating disjoint
  // windows sorted by time; pair them back up per processor.
  for (const ProcFailure& f : resolved.failures)
    down_[f.proc].push_back({f.time, kInfiniteTime});
  for (const ProcRejoin& r : resolved.rejoins) {
    auto& windows = down_[r.proc];
    for (auto& w : windows)
      if (w.second == kInfiniteTime && r.time > w.first) {
        w.second = r.time;
        break;
      }
  }
  for (auto& windows : down_)
    std::sort(windows.begin(), windows.end());
}

bool FailureDetector::alive_at(ProcId p, Cost t) const {
  for (const auto& w : down_[p])
    if (t >= w.first && t < w.second) return false;
  return true;
}

Cost FailureDetector::arrival(ProcId p, std::uint64_t k) const {
  FLB_REQUIRE(p < num_procs_ && k >= 1,
              "FailureDetector::arrival: processor or beat index out of "
              "range");
  const Cost emit = static_cast<Cost>(k) * hb_.period;
  if (!alive_at(p, emit)) return kInfiniteTime;
  Rng rng(mix(seed_, kHeartbeatDomain,
              (static_cast<std::uint64_t>(p) << 40) | k));
  if (rng.bernoulli(hb_.loss_probability)) return kInfiniteTime;
  if (rng.bernoulli(hb_.delay_probability))
    return emit + hb_.delay_factor * hb_.period;
  return emit;
}

std::vector<BeliefEvent> FailureDetector::beliefs(Cost until) const {
  FLB_REQUIRE(std::isfinite(until) && until >= 0.0,
              "FailureDetector::beliefs: horizon must be finite and "
              "non-negative");
  std::vector<BeliefEvent> out;
  // Any threshold crossing at or before `until` depends only on arrivals
  // at or before `until`; beats emitted up to `until` (plus the delay
  // slack) cover every arrival that can matter.
  const auto last_beat = static_cast<std::uint64_t>(
      std::floor(until / hb_.period + hb_.delay_factor + 1.0));
  for (ProcId p = 0; p < num_procs_; ++p) {
    std::vector<Cost> arrivals;  // the monitor heard p at these instants
    for (std::uint64_t k = 1; k <= last_beat; ++k) {
      const Cost a = arrival(p, k);
      if (a != kInfiniteTime && a <= until) arrivals.push_back(a);
    }
    std::sort(arrivals.begin(), arrivals.end());

    // Replay the accrual state machine: the processor "checked in" at
    // t = 0 (startup handshake), then each silence window spawns its
    // suspect/confirm crossings until the next arrival clears them.
    Cost last_heard = 0.0;
    int level = 0;  // 0 = trusted, 1 = suspected, 2 = confirmed
    auto emit_crossings = [&](Cost next_arrival) {
      const Cost suspect_at = last_heard + hb_.suspect_after * hb_.period;
      const Cost confirm_at = last_heard + hb_.confirm_after * hb_.period;
      if (level < 1 && suspect_at < next_arrival && suspect_at <= until) {
        out.push_back({suspect_at, BeliefKind::kSuspected, p, last_heard,
                       hb_.suspect_after});
        level = 1;
      }
      if (level == 1 && confirm_at < next_arrival && confirm_at <= until) {
        out.push_back({confirm_at, BeliefKind::kConfirmedDead, p, last_heard,
                       hb_.confirm_after});
        level = 2;
      }
    };
    for (const Cost a : arrivals) {
      if (a <= last_heard) continue;  // stale (delayed past a fresher beat)
      emit_crossings(a);
      if (level != 0)
        out.push_back({a, BeliefKind::kExonerated, p, last_heard, 0.0});
      level = 0;
      last_heard = a;
    }
    emit_crossings(kInfiniteTime);
  }
  std::sort(out.begin(), out.end(),
            [](const BeliefEvent& a, const BeliefEvent& b) {
              return a.key() < b.key();
            });
  return out;
}

}  // namespace flb::runtime
