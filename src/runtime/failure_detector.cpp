#include "flb/runtime/failure_detector.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "flb/util/error.hpp"
#include "flb/util/rng.hpp"

namespace flb::runtime {

namespace {

// Same splitmix-style finalizer as the fault-resolution streams in
// sim/faults.cpp; domain tag 5 keeps the heartbeat draws decorrelated from
// the task (1), edge (2), burst (3) and cascade (4) streams of one seed.
std::uint64_t mix(std::uint64_t seed, std::uint64_t domain,
                  std::uint64_t index) {
  std::uint64_t z = seed ^ (domain * 0x9e3779b97f4a7c15ULL) ^
                    (index + 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kHeartbeatDomain = 5;
// Observers other than 0 draw their heartbeat-path fates from their own
// stream: paths are lossy independently per observer, which is what lets
// a quorum outvote one noisy path. Observer 0 keeps the legacy domain-5
// stream so single-observer belief digests are unchanged.
constexpr std::uint64_t kObserverDomain = 6;

const char* kind_name(BeliefKind kind) {
  switch (kind) {
    case BeliefKind::kSuspected: return "suspect";
    case BeliefKind::kConfirmedDead: return "confirm-dead";
    case BeliefKind::kExonerated: return "exonerate";
  }
  return "?";
}

}  // namespace

std::string to_string(const BeliefEvent& belief) {
  std::ostringstream os;
  os.precision(17);
  os << "t=" << belief.time << " " << kind_name(belief.kind) << " proc "
     << belief.proc << " last-heard " << belief.last_heard;
  if (belief.kind != BeliefKind::kExonerated)
    os << " phi " << belief.score;
  return os.str();
}

std::string belief_log_text(const std::vector<BeliefEvent>& beliefs) {
  std::string text;
  for (const BeliefEvent& b : beliefs) {
    text += to_string(b);
    text += '\n';
  }
  return text;
}

FailureDetector::FailureDetector(const FaultPlan& world, ProcId num_procs)
    : hb_(world.heartbeat), seed_(world.seed), num_procs_(num_procs) {
  FLB_REQUIRE(hb_.enabled(),
              "FailureDetector: the world plan has no heartbeat section "
              "(heartbeat.period must be positive)");
  world.validate(num_procs);
  const ResolvedFaults resolved = resolve_faults(world);
  outages_ = resolve_partitions(world);
  down_.assign(num_procs, {});
  // resolve_faults canonicalizes kill/rejoin into alternating disjoint
  // windows sorted by time; pair them back up per processor.
  for (const ProcFailure& f : resolved.failures)
    down_[f.proc].push_back({f.time, kInfiniteTime});
  for (const ProcRejoin& r : resolved.rejoins) {
    auto& windows = down_[r.proc];
    for (auto& w : windows)
      if (w.second == kInfiniteTime && r.time > w.first) {
        w.second = r.time;
        break;
      }
  }
  for (auto& windows : down_)
    std::sort(windows.begin(), windows.end());
}

bool FailureDetector::alive_at(ProcId p, Cost t) const {
  for (const auto& w : down_[p])
    if (t >= w.first && t < w.second) return false;
  return true;
}

Cost FailureDetector::arrival(ProcId p, std::uint64_t k) const {
  return arrival(0, p, k);
}

Cost FailureDetector::arrival(ProcId o, ProcId p, std::uint64_t k) const {
  FLB_REQUIRE(o < num_procs_ && p < num_procs_ && k >= 1,
              "FailureDetector::arrival: observer, processor or beat index "
              "out of range");
  const Cost emit = static_cast<Cost>(k) * hb_.period;
  if (!alive_at(p, emit)) return kInfiniteTime;
  const std::uint64_t key =
      o == 0 ? (static_cast<std::uint64_t>(p) << 40) | k
             : (static_cast<std::uint64_t>(o) << 52) |
                   (static_cast<std::uint64_t>(p) << 26) | k;
  Rng rng(mix(seed_, o == 0 ? kHeartbeatDomain : kObserverDomain, key));
  if (rng.bernoulli(hb_.loss_probability)) return kInfiniteTime;
  Cost arr = emit;
  if (rng.bernoulli(hb_.delay_probability))
    arr = emit + hb_.delay_factor * hb_.period;
  // Heartbeats are direct point-to-point probes: a beat whose link is
  // partitioned at the arrival instant never reaches this observer.
  if (link_partitioned(outages_, o, p, arr)) return kInfiniteTime;
  return arr;
}

void FailureDetector::subject_beliefs(ProcId o, ProcId p, Cost until,
                                      std::vector<BeliefEvent>& out) const {
  // Any threshold crossing at or before `until` depends only on arrivals
  // at or before `until`; beats emitted up to `until` (plus the delay
  // slack) cover every arrival that can matter.
  const auto last_beat = static_cast<std::uint64_t>(
      std::floor(until / hb_.period + hb_.delay_factor + 1.0));
  std::vector<Cost> arrivals;  // observer o heard p at these instants
  for (std::uint64_t k = 1; k <= last_beat; ++k) {
    const Cost a = arrival(o, p, k);
    if (a != kInfiniteTime && a <= until) arrivals.push_back(a);
  }
  std::sort(arrivals.begin(), arrivals.end());

  // Replay the accrual state machine: the processor "checked in" at
  // t = 0 (startup handshake), then each silence window spawns its
  // suspect/confirm crossings until the next arrival clears them.
  Cost last_heard = 0.0;
  int level = 0;  // 0 = trusted, 1 = suspected, 2 = confirmed
  auto emit_crossings = [&](Cost next_arrival) {
    const Cost suspect_at = last_heard + hb_.suspect_after * hb_.period;
    const Cost confirm_at = last_heard + hb_.confirm_after * hb_.period;
    if (level < 1 && suspect_at < next_arrival && suspect_at <= until) {
      out.push_back({suspect_at, BeliefKind::kSuspected, p, last_heard,
                     hb_.suspect_after});
      level = 1;
    }
    if (level == 1 && confirm_at < next_arrival && confirm_at <= until) {
      out.push_back({confirm_at, BeliefKind::kConfirmedDead, p, last_heard,
                     hb_.confirm_after});
      level = 2;
    }
  };
  for (const Cost a : arrivals) {
    if (a <= last_heard) continue;  // stale (delayed past a fresher beat)
    emit_crossings(a);
    if (level != 0)
      out.push_back({a, BeliefKind::kExonerated, p, last_heard, 0.0});
    level = 0;
    last_heard = a;
  }
  emit_crossings(kInfiniteTime);
}

std::vector<BeliefEvent> FailureDetector::beliefs(Cost until) const {
  return beliefs(0, until);
}

std::vector<BeliefEvent> FailureDetector::beliefs(ProcId o,
                                                  Cost until) const {
  FLB_REQUIRE(o < num_procs_,
              "FailureDetector::beliefs: observer out of range");
  FLB_REQUIRE(std::isfinite(until) && until >= 0.0,
              "FailureDetector::beliefs: horizon must be finite and "
              "non-negative");
  std::vector<BeliefEvent> out;
  for (ProcId p = 0; p < num_procs_; ++p) subject_beliefs(o, p, until, out);
  std::sort(out.begin(), out.end(),
            [](const BeliefEvent& a, const BeliefEvent& b) {
              return a.key() < b.key();
            });
  return out;
}

std::vector<BeliefEvent> FailureDetector::quorum_beliefs(ProcId quorum,
                                                         Cost until) const {
  FLB_REQUIRE(quorum >= 1,
              "FailureDetector::quorum_beliefs: quorum must be >= 1");
  FLB_REQUIRE(std::isfinite(until) && until >= 0.0,
              "FailureDetector::quorum_beliefs: horizon must be finite and "
              "non-negative");
  std::vector<BeliefEvent> out;
  for (ProcId p = 0; p < num_procs_; ++p) {
    // Every observer's private view of p, plus every instant at which an
    // observer's eligibility (alive, unpartitioned link to p) can change —
    // the cluster-wide level about p can only move at one of these times.
    std::vector<std::vector<BeliefEvent>> views(num_procs_);
    std::vector<Cost> cand;
    for (ProcId o = 0; o < num_procs_; ++o) {
      if (o == p) continue;
      subject_beliefs(o, p, until, views[o]);
      for (const BeliefEvent& b : views[o]) cand.push_back(b.time);
      for (const auto& w : down_[o]) {
        if (w.first <= until) cand.push_back(w.first);
        if (w.second != kInfiniteTime && w.second <= until)
          cand.push_back(w.second);
      }
    }
    for (const LinkOutage& w : outages_) {
      if (w.a != p && w.b != p) continue;
      if (w.time <= until) cand.push_back(w.time);
      if (w.until != kInfiniteTime && w.until <= until)
        cand.push_back(w.until);
    }
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());

    int level = 0;  // cluster-wide: 0 = trusted, 1 = suspected, 2 = dead
    for (const Cost t : cand) {
      std::size_t suspecting = 0;
      std::size_t confirming = 0;
      Cost freshest = 0.0;
      for (ProcId o = 0; o < num_procs_; ++o) {
        if (o == p) continue;
        if (!alive_at(o, t)) continue;
        if (link_partitioned(outages_, o, p, t)) continue;
        int lv = 0;
        Cost lh = 0.0;
        for (const BeliefEvent& b : views[o]) {
          if (b.time > t) break;
          lv = b.kind == BeliefKind::kExonerated     ? 0
               : b.kind == BeliefKind::kSuspected    ? 1
                                                     : 2;
          lh = b.last_heard;
        }
        if (lv >= 1) {
          ++suspecting;
          freshest = std::max(freshest, lh);
        }
        if (lv >= 2) ++confirming;
      }
      if (level == 0 && suspecting >= quorum) {
        out.push_back({t, BeliefKind::kSuspected, p, freshest,
                       static_cast<double>(suspecting)});
        level = 1;
      }
      if (level == 1 && confirming >= quorum) {
        out.push_back({t, BeliefKind::kConfirmedDead, p, freshest,
                       static_cast<double>(confirming)});
        level = 2;
      }
      if (level >= 1 && suspecting < quorum) {
        out.push_back({t, BeliefKind::kExonerated, p, freshest, 0.0});
        level = 0;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const BeliefEvent& a, const BeliefEvent& b) {
              return a.key() < b.key();
            });
  return out;
}

}  // namespace flb::runtime
